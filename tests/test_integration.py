"""Cross-module integration tests: the full DynMo story end to end."""

import numpy as np
import pytest

from repro.baselines.megatron import megatron_uniform_plan
from repro.core import (
    DPExactBalancer,
    DynMoConfig,
    DynMoController,
    PipelineProfiler,
)
from repro.dynamics import (
    EarlyExitDynamism,
    FreezingDynamism,
    MoEDynamism,
    PruningDynamism,
)
from repro.dynamics.pruning import GradualPruningSchedule
from repro.model.config import GPTConfig
from repro.model.cost import ModelCost, build_layer_specs
from repro.pipeline import PipelineEngine, PipelinePlan
from repro.training import Trainer, TrainingConfig


class TestBalancedVsOracle:
    """DynMo's online plans should track the per-iteration oracle."""

    def test_partition_tracks_oracle_under_pruning(self, gpt24_cost, gpt24_specs, comm):
        sched = GradualPruningSchedule(start_iter=5, end_iter=45, prune_every=10)
        scheme = PruningDynamism(gpt24_specs, schedule=sched, seed=0)
        states = scheme.initial_states()
        plan = megatron_uniform_plan(gpt24_specs, 8)
        ctl = DynMoController(gpt24_cost, comm, DynMoConfig(balancer="partition"))
        profiler = PipelineProfiler(gpt24_cost)
        oracle = DPExactBalancer()
        for k in range(50):
            scheme.step(k, states)
            if k % 10 == 0:
                plan = ctl.rebalance(k, plan, states).plan
                w = profiler.profile(plan, states).weights("time")
                best = oracle.rebalance(PipelinePlan.uniform(26, 8), w)
                got = plan.stage_loads(w).max()
                assert got <= best.loads_after.max() * 1.001

    def test_every_scenario_dynmo_not_worse(self, comm):
        """Across dynamism types, DynMo never ends up slower than the
        static plan it started from (net of overhead)."""
        specs = build_layer_specs(
            GPTConfig("int", num_layers=16, hidden=512, num_heads=8, seq_len=512, vocab_size=8192)
        )
        cost = ModelCost(specs)
        factories = [
            lambda: FreezingDynamism(specs, freeze_every=10, tau0=15, seed=0),
            lambda: EarlyExitDynamism(specs, ramp_iters=30, seed=0),
        ]
        for factory in factories:
            cfg = TrainingConfig(iterations=60, seq_len=512, pp_stages=4, dp_ways=1)
            static = Trainer(cfg, cost, factory(), comm=comm).run()
            ctl = DynMoController(cost, comm, DynMoConfig(balancer="partition"))
            dyn = Trainer(cfg, cost, factory(), comm=comm, controller=ctl).run()
            assert dyn.tokens_per_s >= static.tokens_per_s * 0.99


class TestMoEPilotIntegration:
    def test_pilot_router_feeds_dynamism(self):
        """MoEDynamism in 'pilot' mode consumes the numpy MoE layer's
        real token counts."""
        from repro.nn import MoELayer

        cfg = GPTConfig("m", num_layers=4, hidden=64, num_heads=4, seq_len=32,
                        vocab_size=256, moe_every=1, num_experts=4)
        specs = build_layer_specs(cfg)
        scheme = MoEDynamism(specs, router="pilot", seed=0)
        layers = {}
        rng = np.random.default_rng(0)
        for i in scheme.moe_layers:
            layer = MoELayer(64, num_experts=4, seed=i)
            layer(rng.normal(size=(2, 32, 64)))  # populate routing
            layers[i] = layer
        scheme.attach_pilot(layers)
        states = scheme.initial_states()
        scheme.step(0, states)
        mults = [states[i].moe_multiplier for i in scheme.moe_layers]
        assert all(m >= 1.0 for m in mults)
        assert max(mults) > 1.0  # real routing is imbalanced

    def test_pilot_counts_match_layer(self):
        from repro.nn import MoELayer

        cfg = GPTConfig("m", num_layers=2, hidden=32, num_heads=4, seq_len=16,
                        vocab_size=64, moe_every=1, num_experts=4)
        specs = build_layer_specs(cfg)
        scheme = MoEDynamism(specs, router="pilot", seed=0)
        layer = MoELayer(32, num_experts=4, seed=0)
        layer(np.random.default_rng(1).normal(size=(1, 16, 32)))
        scheme.attach_pilot({scheme.moe_layers[0]: layer})
        states = scheme.initial_states()
        scheme.step(0, states)
        counts = layer.tokens_per_expert().astype(float)
        expected = counts.max() / (counts.sum() / 4)
        assert states[scheme.moe_layers[0]].moe_multiplier == pytest.approx(expected)


class TestCheckpointRepackRestart:
    def test_full_cycle(self, tmp_path, gpt24_cost, gpt24_specs, comm):
        """Train -> checkpoint -> restart on fewer workers -> continue.

        The paper's alternative re-packing path (section 3.4.2):
        combine re-packing with a checkpoint restart so the new
        communicator and resharding come for free."""
        from repro.training import load_checkpoint, save_checkpoint

        scheme = FreezingDynamism(gpt24_specs, freeze_every=5, tau0=5, seed=0)
        cfg = TrainingConfig(iterations=20, pp_stages=8, dp_ways=1)
        trainer = Trainer(cfg, gpt24_cost, scheme, comm=comm)
        trainer.run()
        path = tmp_path / "ckpt.json"
        save_checkpoint(path, 20, trainer.plan, trainer.states)

        it, plan, states = load_checkpoint(path, num_stages=4)
        assert plan.num_stages == 4
        cfg2 = TrainingConfig(iterations=10, pp_stages=4, dp_ways=1)
        scheme2 = FreezingDynamism(gpt24_specs, freeze_every=5, tau0=5, seed=0)
        trainer2 = Trainer(cfg2, gpt24_cost, scheme2, comm=comm, initial_plan=plan)
        trainer2.states = states  # resume the dynamism state
        res = trainer2.run()
        assert res.tokens_per_s > 0
        assert res.final_plan.num_stages == 4


class TestActivationCheckpointing:
    def test_tradeoff(self, gpt24_specs):
        base = ModelCost(gpt24_specs)
        ckpt = ModelCost(gpt24_specs, activation_checkpointing=True)
        from repro.model.cost import LayerState

        st = LayerState()
        sp = gpt24_specs[1]
        # slower backward...
        assert ckpt.backward_time(sp, st) > base.backward_time(sp, st)
        assert ckpt.backward_time(sp, st) == pytest.approx(
            base.backward_time(sp, st) + base.forward_time(sp, st)
        )
        # ...but less activation memory in flight
        assert ckpt.activation_bytes(sp, st, in_flight=8) < base.activation_bytes(
            sp, st, in_flight=8
        )

    def test_enables_tighter_repack(self, gpt24_specs):
        """Checkpointing shrinks worker memory, letting re-packing fold
        further under the same capacity."""
        from repro.core.repack import repack_plan
        from repro.model.cost import fresh_states

        states = fresh_states(26)
        plan = PipelinePlan.uniform(26, 8)
        base_mem = PipelineProfiler(ModelCost(gpt24_specs), in_flight=8).profile(
            plan, states
        ).worker_memory
        ckpt_mem = PipelineProfiler(
            ModelCost(gpt24_specs, activation_checkpointing=True), in_flight=8
        ).profile(plan, states).worker_memory
        assert ckpt_mem.sum() < base_mem.sum()
        capacity = float(base_mem.max() * 2.5)
        _, res_base = repack_plan(plan, base_mem, capacity)
        _, res_ckpt = repack_plan(plan, ckpt_mem, capacity)
        assert res_ckpt.num_active <= res_base.num_active
