"""Trace-driven cluster dynamism: events, regrow, slowdowns, trainer."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.events import ClusterEvent, ClusterEventTrace
from repro.cluster.placement import make_placement
from repro.cluster.topology import h100_cluster
from repro.experiments.common import build_scenario, make_trainer
from repro.model.cost import fresh_states
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.migration import diff_plans
from repro.pipeline.plan import PipelinePlan


class TestClusterEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            ClusterEvent(0, "meteor", (0,))

    def test_negative_iteration_rejected(self):
        with pytest.raises(ValueError, match="iteration"):
            ClusterEvent(-1, "failure", (0,))

    def test_empty_and_duplicate_ranks_rejected(self):
        with pytest.raises(ValueError, match="at least one rank"):
            ClusterEvent(0, "failure", ())
        with pytest.raises(ValueError, match="twice"):
            ClusterEvent(0, "failure", (1, 1))

    def test_straggler_needs_duration_and_sane_slowdown(self):
        with pytest.raises(ValueError, match="duration"):
            ClusterEvent(0, "straggler", (0,))
        with pytest.raises(ValueError, match="slowdown"):
            ClusterEvent(0, "straggler", (0,), duration=5, slowdown=0.5)
        with pytest.raises(ValueError, match="no duration"):
            ClusterEvent(0, "failure", (0,), duration=5)


class TestClusterEventTrace:
    def test_sorted_and_canonical_json(self):
        a = ClusterEventTrace(
            (
                ClusterEvent(20, "recovery", (1,)),
                ClusterEvent(5, "failure", (1,)),
            )
        )
        b = ClusterEventTrace(
            (
                ClusterEvent(5, "failure", (1,)),
                ClusterEvent(20, "recovery", (1,)),
            )
        )
        assert a == b
        assert a.to_json() == b.to_json()
        assert [e.iteration for e in a.events] == [5, 20]

    def test_json_round_trip(self, tmp_path):
        trace = ClusterEventTrace(
            (
                ClusterEvent(3, "failure", (0, 2)),
                ClusterEvent(7, "straggler", (1,), duration=4, slowdown=2.5),
                ClusterEvent(11, "recovery", (0, 2)),
            )
        )
        assert ClusterEventTrace.from_json(trace.to_json()) == trace
        path = trace.save(str(tmp_path / "trace.json"))
        assert ClusterEventTrace.load(path) == trace

    def test_bad_json_raises_value_error(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            ClusterEventTrace.from_json("{nope")
        with pytest.raises(ValueError, match="events"):
            ClusterEventTrace.from_json("[]")
        with pytest.raises(ValueError, match="version"):
            ClusterEventTrace.from_json('{"version": 99, "events": []}')
        with pytest.raises(ValueError, match="missing field"):
            ClusterEventTrace.from_json(
                '{"events": [{"kind": "failure", "ranks": [0]}]}'
            )

    def test_malformed_shapes_raise_value_error_not_typeerror(self):
        """Regression: every malformed hand-edited trace shape must
        surface as a clean ValueError — a string for 'ranks' must not
        silently iterate character-wise, and non-iterables must not
        escape as TypeError."""
        with pytest.raises(ValueError, match="list of ints"):
            ClusterEventTrace.from_json(
                '{"events": [{"iteration": 1, "kind": "failure", "ranks": "12"}]}'
            )
        with pytest.raises(ValueError, match="list of ints"):
            ClusterEventTrace.from_json(
                '{"events": [{"iteration": 1, "kind": "failure", "ranks": 3}]}'
            )
        with pytest.raises(ValueError, match="list of event objects"):
            ClusterEventTrace.from_json('{"events": "boom"}')
        with pytest.raises(ValueError, match="must be an object"):
            ClusterEventTrace.from_json('{"events": [17]}')
        with pytest.raises(ValueError, match="malformed cluster event"):
            ClusterEventTrace.from_json(
                '{"events": [{"iteration": "x", "kind": "failure", "ranks": [0]}]}'
            )

    def test_events_at(self):
        trace = ClusterEventTrace(
            (
                ClusterEvent(5, "failure", (0,)),
                ClusterEvent(5, "straggler", (1,), duration=2),
                ClusterEvent(9, "recovery", (0,)),
            )
        )
        assert len(trace.events_at(5)) == 2
        assert trace.events_at(6) == ()
        assert trace.events_at(9)[0].kind == "recovery"
        assert trace.max_rank() == 1

    def test_generator_deterministic_and_in_range(self):
        kw = dict(
            iterations=200,
            num_ranks=8,
            seed=3,
            failure_rate=0.02,
            straggler_rate=0.05,
            preemption_rate=0.01,
            recover_after=30,
        )
        a = ClusterEventTrace.generate(**kw)
        b = ClusterEventTrace.generate(**kw)
        assert a == b and len(a) > 0
        assert a.max_rank() < 8
        counts = a.summary()
        assert counts["straggler"] > 0
        # every departure that recovers does so recover_after later (or
        # clamped to the final iteration)
        departed = {
            e.ranks[0]: e.iteration
            for e in a.events
            if e.kind in ("failure", "preemption")
        }
        for e in a.events:
            if e.kind == "recovery":
                assert e.iteration - departed[e.ranks[0]] <= 30

    def test_generator_never_fails_a_dead_rank(self):
        """Regression: a departed rank stays out of the draw pool until
        its scheduled recovery *fires* — no failure/straggler may name a
        rank that is currently dead."""
        trace = ClusterEventTrace.generate(
            iterations=300,
            num_ranks=4,
            seed=0,
            failure_rate=0.15,
            straggler_rate=0.2,
            recover_after=40,
        )
        dead: set[int] = set()
        for e in trace.events:
            if e.kind == "recovery":
                dead.difference_update(e.ranks)
            else:
                assert not dead.intersection(e.ranks), (e, dead)
                if e.kind in ("failure", "preemption"):
                    dead.update(e.ranks)

    def test_generator_validates_rates(self):
        with pytest.raises(ValueError, match="failure_rate"):
            ClusterEventTrace.generate(10, 4, failure_rate=1.5)
        with pytest.raises(ValueError, match="iterations"):
            ClusterEventTrace.generate(0, 4)

    def test_shifted(self):
        trace = ClusterEventTrace((ClusterEvent(5, "failure", (0,)),))
        assert trace.shifted(10).events[0].iteration == 15


class TestAfterRepackValidation:
    """Satellite bugfix: strictly ascending + in-range indices only."""

    def _placement(self, small_cluster):
        return make_placement(small_cluster, num_stages=4, dp_ways=2)

    def test_duplicates_rejected(self, small_cluster):
        p = self._placement(small_cluster)
        with pytest.raises(ValueError, match="strictly ascending"):
            p.after_repack([1, 1, 2])

    def test_descending_rejected(self, small_cluster):
        p = self._placement(small_cluster)
        with pytest.raises(ValueError, match="strictly ascending"):
            p.after_repack([2, 1])

    def test_out_of_range_rejected(self, small_cluster):
        p = self._placement(small_cluster)
        with pytest.raises(ValueError, match="out of range"):
            p.after_repack([0, 4])
        with pytest.raises(ValueError, match="out of range"):
            p.after_repack([-1, 0])

    def test_valid_subset_still_works(self, small_cluster):
        p = self._placement(small_cluster)
        q = p.after_repack([0, 2])
        assert q.num_stages == 2
        assert q.dp_group(1) == p.dp_group(2)


class TestAfterRegrow:
    def test_inverse_of_repack(self, small_cluster):
        p = make_placement(small_cluster, num_stages=4, dp_ways=2)
        surviving = [0, 2]
        released = [(s, p.dp_group(s)) for s in (1, 3)]
        q = p.after_repack(surviving).after_regrow(released)
        assert q == p

    def test_validation(self, small_cluster):
        p = make_placement(small_cluster, num_stages=4, dp_ways=2)
        q = p.after_repack([0, 1, 2])
        with pytest.raises(ValueError, match="at least one"):
            q.after_regrow([])
        with pytest.raises(ValueError, match="strictly ascending"):
            q.after_regrow([(2, p.dp_group(3)), (1, p.dp_group(3))])
        with pytest.raises(ValueError, match="replicas"):
            q.after_regrow([(3, (6,))])  # width 1 into a dp_ways=2 grid
        with pytest.raises(ValueError, match="out of range"):
            q.after_regrow([(9, p.dp_group(3))])
        with pytest.raises(ValueError, match="twice"):
            q.after_regrow([(3, p.dp_group(0))])  # ranks already placed

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_repack_then_regrow_round_trips(self, data):
        """Property: regrowing exactly the released groups at their old
        positions recovers the original placement, for any survivor
        subset of any grid shape."""
        topo = h100_cluster(num_nodes=4, gpus_per_node=4)
        num_stages = data.draw(st.integers(min_value=2, max_value=8))
        dp_ways = data.draw(
            st.integers(min_value=1, max_value=16 // num_stages)
        )
        strategy = data.draw(
            st.sampled_from(["packed", "scattered", "dp-outer"])
        )
        p = make_placement(topo, num_stages, dp_ways, strategy)
        surviving = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=num_stages - 1),
                min_size=1,
                max_size=num_stages - 1,
                unique=True,
            ).map(sorted)
        )
        released = [
            (s, p.dp_group(s)) for s in range(num_stages) if s not in surviving
        ]
        assert p.after_repack(surviving).after_regrow(released) == p


class TestEngineSlowdowns:
    def _engine(self, gpt24_cost, **kw):
        return PipelineEngine(gpt24_cost, None, schedule="zb", num_micro=8, **kw)

    def test_slowdown_one_is_bit_identical(self, gpt24_cost, gpt24_specs):
        """Satellite: a straggler factor of exactly 1.0 produces
        bit-identical IterationResults to a no-event run."""
        plan = PipelinePlan.uniform(len(gpt24_specs), 4)
        states = fresh_states(len(gpt24_specs))
        base = self._engine(gpt24_cost).run_iteration(plan, states)
        slowed = self._engine(gpt24_cost)
        slowed.set_rank_slowdowns({0: 1.0, 2: 1.0})
        assert slowed.rank_slowdowns == {}  # 1.0 factors are dropped
        res = slowed.run_iteration(plan, states)
        assert res.makespan == base.makespan
        assert (res.busy == base.busy).all()

    def test_slowdown_scales_makespan(self, gpt24_cost, gpt24_specs):
        plan = PipelinePlan.uniform(len(gpt24_specs), 4)
        states = fresh_states(len(gpt24_specs))
        base = self._engine(gpt24_cost).run_iteration(plan, states)
        eng = self._engine(gpt24_cost)
        eng.set_rank_slowdowns({1: 2.0})
        res = eng.run_iteration(plan, states)
        assert res.makespan > base.makespan

    def test_compiled_matches_reference_under_slowdowns(
        self, gpt24_cost, gpt24_specs, comm, small_cluster
    ):
        placement = make_placement(small_cluster, num_stages=4, dp_ways=2)
        states = fresh_states(len(gpt24_specs))
        plan = PipelinePlan.uniform(len(gpt24_specs), 4)
        slow = {0: 1.7, 5: 3.0}
        results = []
        for use_compiled in (True, False):
            eng = PipelineEngine(
                gpt24_cost,
                comm,
                schedule="zb",
                num_micro=8,
                dp_ways=2,
                placement=placement,
                use_compiled=use_compiled,
            )
            eng.set_rank_slowdowns(slow)
            results.append(eng.run_iteration(plan, states))
        assert results[0].makespan == results[1].makespan
        assert (results[0].busy == results[1].busy).all()

    def test_dp_group_moves_at_slowest_replica(
        self, gpt24_cost, gpt24_specs, comm, small_cluster
    ):
        placement = make_placement(small_cluster, num_stages=4, dp_ways=2)
        states = fresh_states(len(gpt24_specs))
        plan = PipelinePlan.uniform(len(gpt24_specs), 4)

        def run(slow):
            eng = PipelineEngine(
                gpt24_cost,
                comm,
                schedule="zb",
                num_micro=8,
                dp_ways=2,
                placement=placement,
                rank_slowdowns=slow,
            )
            return eng.run_iteration(plan, states)

        group = placement.dp_group(1)
        one = run({group[0]: 2.0})
        both = run({group[0]: 2.0, group[1]: 1.5})
        assert one.makespan == both.makespan  # max over the group wins

    def test_invalid_factor_rejected(self, gpt24_cost):
        eng = self._engine(gpt24_cost)
        with pytest.raises(ValueError, match="must be > 0"):
            eng.set_rank_slowdowns({0: 0.0})

    def test_batched_prices_slowed_engines_identically(
        self, gpt24_cost, gpt24_specs
    ):
        """Slowdown maps no longer force the scalar path: the map is
        fixed for the duration of one call, so lanes batch and stay
        bit-identical to the scalar engine."""
        from repro.pipeline import batched as batched_mod

        plan = PipelinePlan.uniform(len(gpt24_specs), 4)
        states = fresh_states(len(gpt24_specs))
        eng = self._engine(gpt24_cost)
        eng.set_rank_slowdowns({1: 2.0})
        scenarios = [(plan, [s.copy() for s in states]) for _ in range(4)]
        batched_mod.stats.reset()
        batched = eng.simulate(scenarios)
        assert batched_mod.stats.batched_lanes == len(scenarios)
        solo = [eng.run_iteration(p, s) for p, s in scenarios]
        for a, b in zip(batched, solo):
            assert a.makespan == b.makespan


class TestMigrationRegrowPricing:
    def test_shrink_and_regrow_both_priced(
        self, gpt24_cost, gpt24_specs, comm, small_cluster
    ):
        states = fresh_states(len(gpt24_specs))
        big = make_placement(small_cluster, num_stages=4, dp_ways=1)
        small = big.after_repack([0, 1, 3])
        plan4 = PipelinePlan.uniform(len(gpt24_specs), 4)
        plan3 = PipelinePlan.uniform(len(gpt24_specs), 3)
        shrink = diff_plans(plan4, plan3, gpt24_cost, states)
        grow = diff_plans(plan3, plan4, gpt24_cost, states)
        c_shrink = shrink.cost_seconds(
            comm, src_placement=big, dst_placement=small
        )
        c_grow = grow.cost_seconds(comm, src_placement=small, dst_placement=big)
        assert c_shrink > 0 and c_grow > 0

    def test_stage_out_of_range_raises(
        self, gpt24_cost, gpt24_specs, comm, small_cluster
    ):
        states = fresh_states(len(gpt24_specs))
        big = make_placement(small_cluster, num_stages=4, dp_ways=1)
        small = big.after_repack([0, 1, 3])
        plan4 = PipelinePlan.uniform(len(gpt24_specs), 4)
        plan3 = PipelinePlan.uniform(len(gpt24_specs), 3)
        migration = diff_plans(plan4, plan3, gpt24_cost, states)
        with pytest.raises(ValueError, match="source placement"):
            migration.cost_seconds(comm, src_placement=small, dst_placement=small)


def _event_trainer(iterations, trace, mode="megatron", dp_ways=1, **kw):
    setup = build_scenario(
        "pruning", num_layers=24, pp_stages=8, dp_ways=dp_ways, iterations=iterations
    )
    return make_trainer(
        setup,
        mode,
        iterations=iterations,
        balance_cost="modeled",
        cluster_events=trace,
        **kw,
    )


class TestTrainerEvents:
    def test_failure_shrinks_and_recovery_restores(self):
        trace = ClusterEventTrace(
            (
                ClusterEvent(5, "failure", (2, 3)),
                ClusterEvent(20, "recovery", (2, 3)),
            )
        )
        trainer = _event_trainer(40, trace)
        original_ranks = list(trainer.placement.stage_ranks())
        res = trainer.run()
        stages = dict(res.stage_count_history)
        assert stages[4] == 8 and stages[5] == 6 and stages[19] == 6
        assert stages[20] == 8
        # recovery re-admits the exact released ranks at their old spots
        assert res.final_stage_ranks == original_ranks
        assert res.released_ranks_history == [(5, [2, 3])]
        assert [e[1] for e in res.cluster_events_applied] == [
            "failure",
            "recovery",
        ]
        assert res.layers_moved > 0 and res.overhead_s > 0

    def test_straggler_window_prices_and_expires(self):
        trace = ClusterEventTrace(
            (ClusterEvent(10, "straggler", (3,), duration=5, slowdown=3.0),)
        )
        res = _event_trainer(20, trace).run()
        ms = dict(res.makespan_history)
        assert ms[10] > 1.5 * ms[9]  # window open
        assert ms[15] < 1.2 * ms[9]  # window closed

    def test_straggler_slowdown_one_is_bit_identical_run(self):
        """Satellite: a whole run under a 1.0-slowdown straggler equals
        the no-event run bit for bit."""
        trace = ClusterEventTrace(
            (ClusterEvent(4, "straggler", (3,), duration=6, slowdown=1.0),)
        )
        a = _event_trainer(25, trace).run()
        b = _event_trainer(25, None).run()
        assert a.total_time_s == b.total_time_s
        assert a.makespan_history == b.makespan_history
        assert a.bubble_history == b.bubble_history

    def test_preemption_behaves_like_failure(self):
        trace = ClusterEventTrace((ClusterEvent(5, "preemption", (7,)),))
        res = _event_trainer(12, trace).run()
        assert dict(res.stage_count_history)[11] == 7
        assert res.released_ranks_history == [(5, [7])]

    def test_recovery_waits_for_all_group_ranks(self):
        # DP-2: stage 2's group is ranks (2, 10).  Rank 2 fails (the
        # whole stage leaves, rank 10 is released but healthy); rank 10
        # then fails while spare.  Recovering rank 2 alone must NOT
        # regrow the stage — its group still holds a dead rank.
        trace = ClusterEventTrace(
            (
                ClusterEvent(3, "failure", (2,)),
                ClusterEvent(6, "failure", (10,)),
                ClusterEvent(10, "recovery", (2,)),
                ClusterEvent(14, "recovery", (10,)),
            )
        )
        trainer = _event_trainer(20, trace, dp_ways=2)
        assert trainer.placement.dp_group(2) == (2, 10)
        res = trainer.run()
        stages = dict(res.stage_count_history)
        assert stages[3] == 7 and stages[6] == 7
        assert stages[10] == 7  # rank 10 still dead: no regrow yet
        assert stages[14] == 8  # both ranks healthy: the group returns
        assert res.final_stage_ranks == list(range(8))

    def test_failure_cancels_straggler_window_on_dead_rank(self):
        """Regression: an open straggler window dies with its rank —
        after the failure the run behaves exactly like one that never
        straggled (no stale slowdown key, no phantom expiry rebalance)."""
        with_straggle = ClusterEventTrace(
            (
                ClusterEvent(2, "straggler", (3,), duration=30, slowdown=2.0),
                ClusterEvent(5, "failure", (3,)),
                ClusterEvent(10, "recovery", (3,)),
            )
        )
        without = ClusterEventTrace(
            (
                ClusterEvent(5, "failure", (3,)),
                ClusterEvent(10, "recovery", (3,)),
            )
        )
        a = _event_trainer(20, with_straggle)
        res_a, res_b = a.run(), _event_trainer(20, without).run()
        ms_a, ms_b = dict(res_a.makespan_history), dict(res_b.makespan_history)
        assert ms_a[3] > ms_b[3]  # window open before the failure
        for k in range(5, 20):
            assert ms_a[k] == ms_b[k]  # identical once the rank died
        assert a.engine.rank_slowdowns == {}

    def test_straggler_on_dead_rank_is_a_noop(self):
        trace = ClusterEventTrace(
            (
                ClusterEvent(3, "failure", (3,)),
                ClusterEvent(6, "straggler", (3,), duration=10, slowdown=4.0),
            )
        )
        baseline = ClusterEventTrace((ClusterEvent(3, "failure", (3,)),))
        a = _event_trainer(15, trace).run()
        b = _event_trainer(15, baseline).run()
        assert a.makespan_history == b.makespan_history

    def test_staggered_failures_regrow_in_original_order(self):
        """Regression: positions are resolved against the run-start
        pipeline order, not the (shifting) frame at loss time — rank 2
        fails while the pipeline is already short one stage, yet a
        joint recovery restores [0..7] exactly."""
        trace = ClusterEventTrace(
            (
                ClusterEvent(3, "failure", (1,)),
                ClusterEvent(6, "failure", (2,)),
                ClusterEvent(10, "recovery", (1, 2)),
            )
        )
        res = _event_trainer(15, trace).run()
        stages = dict(res.stage_count_history)
        assert stages[6] == 6 and stages[10] == 8
        assert res.final_stage_ranks == list(range(8))

    def test_controller_run_survives_events(self):
        trace = ClusterEventTrace(
            (
                ClusterEvent(5, "failure", (1,)),
                ClusterEvent(12, "straggler", (4,), duration=6, slowdown=2.0),
                ClusterEvent(25, "recovery", (1,)),
            )
        )
        res = _event_trainer(40, trace, mode="dynmo-partition").run()
        assert dict(res.stage_count_history)[39] == 8
        assert len(res.cluster_events_applied) == 3

    def test_killing_every_stage_raises(self):
        trace = ClusterEventTrace(
            (ClusterEvent(2, "failure", tuple(range(8))),)
        )
        with pytest.raises(RuntimeError, match="every pipeline stage"):
            _event_trainer(5, trace).run()

    def test_out_of_range_rank_rejected_at_construction(self):
        trace = ClusterEventTrace((ClusterEvent(2, "failure", (100,)),))
        with pytest.raises(ValueError, match="rank 100"):
            _event_trainer(5, trace)

    def test_failure_without_placement_raises(self, gpt24_cost, gpt24_specs):
        from repro.dynamics.base import StaticScheme
        from repro.training.config import TrainingConfig
        from repro.training.trainer import Trainer

        trace = ClusterEventTrace((ClusterEvent(1, "failure", (0,)),))
        cfg = TrainingConfig(iterations=5, pp_stages=4, placement_strategy=None)
        t = Trainer(
            cfg, gpt24_cost, StaticScheme(gpt24_specs), cluster_events=trace
        )
        with pytest.raises(ValueError, match="placement"):
            t.run()

    def test_straggler_without_placement_works(self, gpt24_cost, gpt24_specs):
        from repro.dynamics.base import StaticScheme
        from repro.training.config import TrainingConfig
        from repro.training.trainer import Trainer

        trace = ClusterEventTrace(
            (ClusterEvent(2, "straggler", (1,), duration=3, slowdown=2.0),)
        )
        cfg = TrainingConfig(
            iterations=8, pp_stages=4, placement_strategy=None, record_every=1
        )
        res = Trainer(
            cfg, gpt24_cost, StaticScheme(gpt24_specs), cluster_events=trace
        ).run()
        ms = dict(res.makespan_history)
        assert ms[2] > ms[1] and ms[5] == ms[1]

    def test_lockstep_drives_event_trainer_identically(self):
        """The lockstep driver re-bins by compiled key every iteration,
        so an event run whose stage count changes mid-flight (scalar
        fallback via its slowdowns/plan) must match its solo run."""
        from repro.training import run_trainers_lockstep

        trace = ClusterEventTrace(
            (
                ClusterEvent(5, "failure", (2,)),
                ClusterEvent(9, "straggler", (4,), duration=4, slowdown=2.0),
                ClusterEvent(15, "recovery", (2,)),
            )
        )
        solo = _event_trainer(25, trace).run()
        in_bin = [_event_trainer(25, trace), _event_trainer(25, None)]
        outcomes = run_trainers_lockstep([(t, None) for t in in_bin])
        assert not isinstance(outcomes[0], BaseException)
        assert outcomes[0].total_time_s == solo.total_time_s
        assert outcomes[0].makespan_history == solo.makespan_history

    def test_job_manager_tracks_failure_and_recovery(self):
        from repro.cluster.job_manager import ElasticJobManager

        jm = ElasticJobManager(total_gpus=8)
        trace = ClusterEventTrace(
            (
                ClusterEvent(5, "failure", (2,)),
                ClusterEvent(10, "recovery", (2,)),
            )
        )
        res = _event_trainer(20, trace, job_manager=jm).run()
        assert jm.claims["train"] == 8  # back to full strength
        assert jm.events[0].num_gpus == 1
        assert res.average_gpus < 8.0


class TestEventSweep:
    def _trace_json(self):
        return ClusterEventTrace(
            (
                ClusterEvent(5, "failure", (2,)),
                ClusterEvent(12, "straggler", (4,), duration=6, slowdown=1.5),
                ClusterEvent(20, "recovery", (2,)),
            )
        ).to_json()

    def test_spec_hash_covers_trace_content(self):
        from repro.orchestrator import RunSpec

        base = RunSpec(scenario="pruning", iterations=30)
        with_events = base.with_(cluster_events=self._trace_json())
        assert base.spec_hash != with_events.spec_hash
        assert "events-" in with_events.label
        # round-trips through dict (cache storage format)
        assert RunSpec.from_dict(with_events.to_dict()) == with_events

    def test_execute_spec_applies_events(self):
        from repro.orchestrator import RunSpec
        from repro.orchestrator.runner import execute_spec

        spec = RunSpec(
            scenario="pruning",
            mode="megatron",
            iterations=30,
            cluster_events=self._trace_json(),
        )
        record = execute_spec(spec)
        assert record.ok, record.error
        applied = record.metrics["cluster_events_applied"]
        assert [a[1] for a in applied] == ["failure", "straggler", "recovery"]
        assert record.metrics["final_num_stages"] == 8

    def test_batched_executor_matches_serial_on_event_specs(self, tmp_path):
        """The batched backend keeps event specs in its lockstep bins
        (piecewise-static segments re-bin by current compiled key) and
        still produces the same metrics as serial execution.
        Controller-driven modes (dynmo-*) ride along: the lockstep
        driver runs their hooks per iteration exactly like a solo run."""
        from repro.orchestrator import ExecutionPolicy, RunSpec, SweepRunner

        specs = [
            RunSpec(
                scenario="pruning",
                mode=mode,
                iterations=30,
                cluster_events=self._trace_json(),
            )
            for mode in ("megatron", "dynmo-partition")
        ]
        serial = SweepRunner(policy=ExecutionPolicy("inline")).run(specs)
        batched = SweepRunner(policy=ExecutionPolicy("batched")).run(specs)
        for a, b in zip(serial, batched):
            assert a.ok and b.ok
            assert a.metrics == b.metrics

    def test_bad_trace_becomes_error_record(self):
        from repro.orchestrator import RunSpec
        from repro.orchestrator.runner import execute_spec

        spec = RunSpec(
            scenario="pruning", iterations=10, cluster_events="{broken"
        )
        record = execute_spec(spec)
        assert record.status == "error"
        assert "JSON" in record.error


class TestEventsCLI:
    def test_events_command_writes_loadable_trace(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        rc = main(
            [
                "events",
                "--iterations", "100",
                "--ranks", "8",
                "--seed", "1",
                "--failure-rate", "0.05",
                "--straggler-rate", "0.05",
                "--recover-after", "20",
                "--out", str(out),
            ]
        )
        assert rc == 0
        trace = ClusterEventTrace.load(str(out))
        assert len(trace) > 0
        assert "wrote" in capsys.readouterr().out

    def test_events_single_scenario_mode(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "trace.json"
        rc = main(
            [
                "events",
                "--fail-at", "10",
                "--recover-at", "30",
                "--fail-ranks", "2", "3",
                "--straggle-ranks", "5",
                "--out", str(out),
            ]
        )
        assert rc == 0
        trace = ClusterEventTrace.load(str(out))
        assert trace.summary() == {
            "failure": 1,
            "preemption": 0,
            "straggler": 1,
            "recovery": 1,
        }

    def test_straggler_only_handwritten_trace(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "trace.json"
        rc = main(
            [
                "events",
                "--straggle-at", "5",
                "--straggle-ranks", "3", "4",
                "--straggler-duration", "7",
                "--straggler-slowdown", "2.5",
                "--out", str(out),
            ]
        )
        assert rc == 0
        (event,) = ClusterEventTrace.load(str(out)).events
        assert event.kind == "straggler" and event.ranks == (3, 4)
        assert event.duration == 7 and event.slowdown == 2.5

    def test_failure_only_trace_is_a_permanent_loss(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "trace.json"
        rc = main(
            ["events", "--fail-at", "10", "--fail-ranks", "2", "--out", str(out)]
        )
        assert rc == 0
        (event,) = ClusterEventTrace.load(str(out)).events
        assert event.kind == "failure" and event.ranks == (2,)

    def test_inconsistent_handwritten_flags_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="straggle-at"):
            main(["events", "--straggle-ranks", "3"])
        with pytest.raises(SystemExit, match="fail-at"):
            main(["events", "--recover-at", "5"])
        with pytest.raises(SystemExit, match="straggle-ranks"):
            main(["events", "--fail-at", "2", "--recover-at", "5",
                  "--straggle-at", "7"])
        with pytest.raises(SystemExit, match="after --fail-at"):
            main(["events", "--fail-at", "9", "--recover-at", "5"])

    def test_empty_trace_file_keeps_specs_event_free(self, tmp_path, capsys):
        """Regression: an empty trace must not fork cache identity or
        disable the batched executor — the sweep runs exactly as if
        --events had not been passed."""
        import json as _json

        from repro.cli import main

        trace = tmp_path / "empty.json"
        ClusterEventTrace().save(str(trace))
        out_json = tmp_path / "sweep.json"
        rc = main(
            [
                "sweep",
                "--scenario", "pruning",
                "--mode", "megatron",
                "--iterations", "15",
                "--jobs", "1",
                "--events", str(trace),
                "--cache-dir", str(tmp_path / "cache"),
                "--json", str(out_json),
            ]
        )
        assert rc == 0
        assert "running without events" in capsys.readouterr().out
        (record,) = _json.loads(out_json.read_text())["records"]
        assert record["spec"]["cluster_events"] == ""

    def test_sweep_with_events_flag(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.json"
        ClusterEventTrace(
            (
                ClusterEvent(3, "failure", (2,)),
                ClusterEvent(8, "straggler", (4,), duration=4, slowdown=1.5),
                ClusterEvent(12, "recovery", (2,)),
            )
        ).save(str(trace))
        out_json = tmp_path / "sweep.json"
        rc = main(
            [
                "sweep",
                "--scenario", "pruning",
                "--mode", "megatron",
                "--iterations", "20",
                "--jobs", "1",
                "--events", str(trace),
                "--cache-dir", str(tmp_path / "cache"),
                "--json", str(out_json),
            ]
        )
        assert rc == 0
        payload = json.loads(out_json.read_text())
        (record,) = payload["records"]
        assert record["status"] == "ok"
        assert len(record["metrics"]["cluster_events_applied"]) == 3
        assert record["spec"]["cluster_events"]
        captured = capsys.readouterr().out
        assert "events_applied" in captured
