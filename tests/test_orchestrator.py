"""Tests for the parallel sweep orchestrator (spec/cache/runner/export)."""

import json
import time

import pytest

from repro.orchestrator import (
    ExecutionPolicy,
    ResultCache,
    RunRecord,
    RunSpec,
    SweepError,
    SweepRunner,
    execute_spec,
    read_json,
    record_row,
    records_to_rows,
    run_specs,
    write_csv,
    write_json,
)
from repro.orchestrator.runner import SweepTimeout, _deadline


def tiny(**kwargs) -> RunSpec:
    base = dict(
        scenario="pruning", mode="megatron", num_layers=24,
        pp_stages=4, dp_ways=1, iterations=20,
    )
    base.update(kwargs)
    return RunSpec(**base)


class TestRunSpec:
    def test_hash_is_stable(self):
        assert tiny().spec_hash == tiny().spec_hash
        assert len(tiny().spec_hash) == 16

    def test_hash_covers_every_field(self):
        base = tiny()
        assert base.spec_hash != tiny(seed=1).spec_hash
        assert base.spec_hash != tiny(mode="dynmo-partition").spec_hash
        assert base.spec_hash != tiny(iterations=21).spec_hash
        assert base.spec_hash != tiny(static_scheme=True).spec_hash
        assert base.spec_hash != tiny(balance_cost="measured").spec_hash

    def test_hash_covers_code_version(self, monkeypatch):
        import repro

        before = tiny().spec_hash
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert tiny().spec_hash != before

    def test_dict_roundtrip(self):
        spec = tiny(mode="dynmo-diffusion", seed=3, repack=True, repack_target=2)
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash == spec.spec_hash

    def test_from_dict_ignores_unknown_fields(self):
        spec = RunSpec.from_dict(dict(tiny().to_dict(), bogus=1))
        assert spec == tiny()

    def test_with_returns_modified_copy(self):
        spec = tiny()
        other = spec.with_(seed=7)
        assert other.seed == 7 and spec.seed == 0

    def test_label_names_variant(self):
        label = tiny(mode="dynmo-partition", static_scheme=True).label
        assert "pruning" in label and "dynmo-partition" in label
        assert "static" in label


class TestExecuteSpec:
    def test_ok_run_has_metrics(self):
        record = execute_spec(tiny())
        assert record.ok
        assert record.metrics["tokens_per_s"] > 0
        assert record.metrics["iterations"] == 20
        assert record.spec_hash == tiny().spec_hash

    def test_unknown_mode_is_isolated_error(self):
        record = execute_spec(tiny(mode="warp-drive"))
        assert record.status == "error"
        assert record.error_type == "ValueError"
        assert "warp-drive" in record.error

    def test_invalid_baseline_is_isolated_error(self):
        # pruning has no dense baseline -> run_training raises ValueError
        record = execute_spec(tiny(mode="dense-baseline"))
        assert record.status == "error"
        assert record.error_type == "ValueError"

    def test_unwrap_raises_on_failure(self):
        record = execute_spec(tiny(mode="dense-baseline"))
        with pytest.raises(SweepError):
            record.unwrap()

    def test_static_scheme_control(self):
        dyn = execute_spec(tiny()).unwrap()
        static = execute_spec(tiny(static_scheme=True)).unwrap()
        assert dyn["mean_bubble_ratio"] >= static["mean_bubble_ratio"] * 0.95


class TestDeadline:
    def test_deadline_interrupts_slow_body(self):
        with pytest.raises(SweepTimeout):
            with _deadline(1):
                time.sleep(5)

    def test_deadline_noop_without_budget(self):
        with _deadline(None):
            pass


class TestSweepRunner:
    def test_results_come_back_in_spec_order(self):
        specs = [tiny(seed=s) for s in (0, 1, 2)]
        records = SweepRunner().run(specs)
        assert [r.spec.seed for r in records] == [0, 1, 2]

    def test_failure_does_not_poison_sweep(self):
        specs = [tiny(), tiny(mode="dense-baseline"), tiny(seed=1)]
        records = SweepRunner().run(specs)
        assert [r.status for r in records] == ["ok", "error", "ok"]

    def test_parallel_matches_serial_exactly(self):
        specs = [
            tiny(mode=m, seed=s)
            for m in ("megatron", "dynmo-partition")
            for s in (0, 1)
        ]
        serial = SweepRunner().run(specs)
        pooled = SweepRunner(policy=ExecutionPolicy("pool", workers=2)).run(specs)
        assert all(r.ok for r in serial + pooled)
        for a, b in zip(serial, pooled):
            assert a.metrics == b.metrics

    def test_progress_callback_sees_every_run(self):
        seen = []
        runner = SweepRunner(
            progress=lambda done, total, rec: seen.append((done, total))
        )
        runner.run([tiny(), tiny(seed=1)])
        assert seen == [(1, 2), (2, 2)]

    def test_run_specs_default_runner(self):
        records = run_specs([tiny()])
        assert len(records) == 1 and records[0].ok

    def test_pool_is_reused_across_runs(self):
        with SweepRunner(policy=ExecutionPolicy("pool", workers=2)) as runner:
            runner.run([tiny(), tiny(seed=1)])
            pool = runner._pool
            assert pool is not None
            runner.run([tiny(seed=2), tiny(seed=3)])
            assert runner._pool is pool
        assert runner._pool is None  # context exit closed it

    def test_close_is_idempotent(self):
        runner = SweepRunner(policy=ExecutionPolicy("pool", workers=2))
        runner.close()
        runner.close()


class TestBatchedExecutor:
    """jobs=0: binned lockstep execution in-process."""

    def _grid(self):
        return [
            tiny(scenario=sc, mode=m, seed=s)
            for sc in ("pruning", "freezing")
            for m in ("megatron", "dynmo-partition")
            for s in (0, 1)
        ]

    def test_batched_matches_serial_exactly(self):
        specs = self._grid()
        serial = SweepRunner().run(specs)
        batched = SweepRunner(policy=ExecutionPolicy("batched")).run(specs)
        assert all(r.ok for r in serial + batched)
        for a, b in zip(serial, batched):
            assert a.metrics == b.metrics

    def test_batched_isolates_failures(self):
        specs = [tiny(), tiny(mode="dense-baseline"), tiny(seed=1)]
        records = SweepRunner(policy=ExecutionPolicy("batched")).run(specs)
        assert [r.status for r in records] == ["ok", "error", "ok"]
        assert records[1].error_type == "ValueError"

    def test_batched_repack_specs_fall_back_and_match(self):
        spec = tiny(
            scenario="pruning",
            mode="dynmo-diffusion",
            pp_stages=8,
            iterations=40,
            cluster="2x8+2x4",
            repack=True,
            repack_target=4,
            repack_force=True,
        )
        serial = SweepRunner().run([spec])[0]
        batched = SweepRunner(policy=ExecutionPolicy("batched")).run([spec])[0]
        assert serial.ok and batched.ok
        assert serial.metrics == batched.metrics
        assert batched.metrics["final_num_stages"] == 4

    def test_batched_timeout_records_status(self):
        specs = [tiny(iterations=5000), tiny(iterations=5000, seed=1)]
        records = SweepRunner(policy=ExecutionPolicy("batched"), timeout_s=1e-9).run(specs)
        assert [r.status for r in records] == ["timeout", "timeout"]
        assert all(r.error_type == "SweepTimeout" for r in records)

    def test_batched_serves_and_fills_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = self._grid()[:4]
        first = SweepRunner(policy=ExecutionPolicy("batched"), cache=cache).run(specs)
        assert not any(r.cached for r in first)
        assert len(cache) == len(specs)
        rerun = SweepRunner(policy=ExecutionPolicy("batched"), cache=cache).run(specs)
        assert all(r.cached for r in rerun)

    def test_batched_progress_sees_every_run(self):
        seen = []
        runner = SweepRunner(
            policy=ExecutionPolicy("batched"),
            progress=lambda done, total, rec: seen.append((done, total)),
        )
        runner.run(self._grid()[:3])
        assert sorted(seen) == [(1, 3), (2, 3), (3, 3)]


class TestDeadlineTimeout:
    """Budgets are enforced even where SIGALRM cannot be armed."""

    def test_off_main_thread_budget_uses_monotonic_deadline(self):
        import threading

        results = []
        thread = threading.Thread(
            target=lambda: results.append(execute_spec(tiny(), timeout_s=1e-9))
        )
        thread.start()
        thread.join()
        (record,) = results
        assert record.status == "timeout"
        assert "monotonic" in (record.error or "")

    def test_deadline_reports_armed_state(self):
        with _deadline(5) as armed:
            assert armed
        with _deadline(None) as armed:
            assert not armed


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny()
        assert cache.get(spec) is None
        first = SweepRunner(cache=cache).run([spec])[0]
        assert not first.cached
        second = SweepRunner(cache=cache).run([spec])[0]
        assert second.cached
        assert second.metrics == first.metrics

    def test_hit_rate_on_rerun_is_total(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [tiny(seed=s, mode=m) for s in (0, 1) for m in ("megatron", "dynmo-partition")]
        SweepRunner(cache=cache).run(specs)
        rerun = SweepRunner(cache=cache).run(specs)
        assert all(r.cached for r in rerun)
        assert len(cache) == len(specs)

    def test_changed_spec_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache).run([tiny()])
        changed = SweepRunner(cache=cache).run([tiny(iterations=21)])[0]
        assert not changed.cached

    def test_failures_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny(mode="dense-baseline")
        SweepRunner(cache=cache).run([spec])
        assert len(cache) == 0
        assert cache.get(spec) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny()
        SweepRunner(cache=cache).run([spec])
        path = tmp_path / f"{spec.spec_hash}.json"
        path.write_text("{not json")
        assert cache.get(spec) is None

    def test_binary_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny()
        (tmp_path / f"{spec.spec_hash}.json").write_bytes(b"\xff\xfe\x00")
        assert cache.get(spec) is None

    def test_hash_collision_detected_via_spec_compare(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny()
        record = SweepRunner(cache=cache).run([spec])[0]
        # forge an entry whose filename matches another spec's hash
        other = tiny(seed=9)
        forged = record.to_dict()
        (tmp_path / f"{other.spec_hash}.json").write_text(json.dumps(forged))
        assert cache.get(other) is None

    def test_refresh_bypasses_reads_but_writes_through(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny()
        SweepRunner(cache=cache).run([spec])
        stale = tmp_path / f"{spec.spec_hash}.json"
        before = stale.read_text()
        stale.write_text(before.replace('"status": "ok"', '"status": "ok" '))
        refreshed = SweepRunner(cache=cache, refresh=True).run([spec])[0]
        assert not refreshed.cached
        # the forced run replaced the entry on disk
        assert stale.read_text() != before.replace('"status": "ok"', '"status": "ok" ')
        assert cache.get(spec) is not None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache).run([tiny()])
        assert cache.clear() == 1
        assert len(cache) == 0


class TestExport:
    def test_rows_carry_hash_and_seed(self):
        records = SweepRunner().run([tiny(seed=5)])
        row = record_row(records[0])
        assert row["spec_hash"] == tiny(seed=5).spec_hash
        assert row["seed"] == 5
        assert row["tokens_per_s"] > 0

    def test_json_roundtrip(self, tmp_path):
        records = SweepRunner().run([tiny(), tiny(seed=1)])
        path = write_json(records, tmp_path / "out.json")
        loaded = read_json(path)
        assert [r.spec for r in loaded] == [r.spec for r in records]
        assert [r.metrics for r in loaded] == [r.metrics for r in records]

    def test_csv_has_header_and_rows(self, tmp_path):
        records = SweepRunner().run([tiny()])
        path = write_csv(records, tmp_path / "out.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        header = lines[0].split(",")
        assert "spec_hash" in header and "seed" in header
        assert "tokens_per_s" in header

    def test_failed_rows_export_error_type(self):
        records = SweepRunner().run([tiny(mode="dense-baseline")])
        rows = records_to_rows(records)
        assert rows[0]["status"] == "error"
        assert rows[0]["error_type"] == "ValueError"


class TestRunRecordSerialisation:
    def test_record_dict_roundtrip(self):
        record = execute_spec(tiny())
        clone = RunRecord.from_dict(record.to_dict())
        assert clone.spec == record.spec
        assert clone.metrics == record.metrics
        assert clone.status == record.status

    def test_schema_drifted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny()
        (tmp_path / f"{spec.spec_hash}.json").write_text('{"schema": 2, "bogus": 1}')
        assert cache.get(spec) is None


class TestHeterogeneousElasticSweep:
    """Acceptance: a mixed-node elastic scenario runs end-to-end and
    every row records the placement strategy and surviving ranks."""

    def test_mixed_node_repack_sweep(self):
        specs = [
            tiny(
                scenario="pruning",
                mode="dynmo-diffusion",
                pp_stages=8,
                iterations=60,
                cluster="2x8+2x4",
                placement=placement,
                repack=True,
                repack_target=4,
                repack_force=True,
                elastic_total_gpus=8,
            )
            for placement in ("packed", "scattered")
        ]
        records = run_specs(specs)
        for spec, record in zip(specs, records):
            metrics = record.unwrap()
            assert metrics["placement_strategy"] == spec.placement
            survivors = metrics["final_stage_ranks"]
            assert len(survivors) == metrics["final_num_stages"]
            assert len(set(survivors)) == len(survivors)
            row = record_row(record)
            assert row["placement"] == spec.placement
            assert row["surviving_ranks"] == "-".join(map(str, survivors))
        # forced repack 8 -> 4 must actually release workers
        assert records[0].metrics["final_num_stages"] == 4
        assert records[0].metrics["released_ranks_history"]

    def test_cluster_too_small_is_isolated_error(self):
        record = execute_spec(tiny(pp_stages=8, cluster="1x4"))
        assert record.status == "error"
        assert "GPUs" in (record.error or "")

    def test_placement_changes_result_and_hash(self):
        a = tiny(placement="packed")
        b = tiny(placement="scattered")
        assert a.spec_hash != b.spec_hash
        assert "scattered" in b.label
