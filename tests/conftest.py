"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.collectives import CommCostModel
from repro.cluster.topology import h100_cluster
from repro.model.config import gpt_24, tiny_config
from repro.model.cost import ModelCost, build_layer_specs, fresh_states


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def gpt24_specs():
    return build_layer_specs(gpt_24())


@pytest.fixture
def gpt24_cost(gpt24_specs):
    return ModelCost(gpt24_specs)


@pytest.fixture
def gpt24_states(gpt24_specs):
    return fresh_states(len(gpt24_specs))


@pytest.fixture
def small_cluster():
    return h100_cluster(num_nodes=2, gpus_per_node=4)


@pytest.fixture
def comm(small_cluster):
    return CommCostModel(small_cluster)


@pytest.fixture
def tiny_cfg():
    return tiny_config(num_layers=4)
