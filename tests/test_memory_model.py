"""Tests for the per-stage memory model and memory-aware placement.

Covers the accounting authority (`StageMemoryModel`), schedule-aware
in-flight counts, placement validation over heterogeneous capacities,
per-destination re-packing (Algorithm 2 with per-rank ``max_mem``),
Trainer OOM policies, orchestrated ``status="oom"`` records and their
cache-soundness, and differential goldens proving the memory knobs
never change timing.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro.cluster.memory import PlacementOOMError
from repro.cluster.placement import make_placement, validate_memory
from repro.cluster.topology import GPU_MODELS, parse_cluster
from repro.core.balancers.base import LoadBalancer
from repro.core.balancers.partition import partition_balanced
from repro.core.repack import first_fit_repack, repack_plan
from repro.experiments.common import build_scenario, make_trainer, parse_memory_limit
from repro.model.config import gpt_24
from repro.model.cost import ModelCost, PRECISIONS, build_layer_specs, fresh_states
from repro.model.memory import SCHEDULES, StageMemoryModel
from repro.orchestrator import ExecutionPolicy, ResultCache, RunSpec, execute_spec
from repro.orchestrator.runner import SweepRunner
from repro.pipeline import PipelinePlan

GIB = 1024**3


@pytest.fixture
def specs():
    return build_layer_specs(gpt_24())


@pytest.fixture
def cost(specs):
    return ModelCost(specs)


def _varied_states(n):
    states = fresh_states(n)
    states[2].sparsity = 0.5
    states[3].frozen = True
    states[4].token_fraction = 0.7
    return states


class TestAccounting:
    def test_mixed_matches_legacy_integer_for_integer(self, specs, cost):
        """precision="mixed" must reproduce ModelCost.layer_memory
        exactly — this is what keeps default-knob runs bit-identical."""
        states = _varied_states(len(specs))
        model = StageMemoryModel(cost, schedule="zb", num_micro=32)
        for infl in (1, 3, 8):
            for sp, stt in zip(specs, states):
                assert sum(model.layer_components(sp, stt, infl)) == (
                    cost.layer_memory(sp, stt, infl)
                )

    def test_full_precision_regime(self, specs, cost):
        states = _varied_states(len(specs))
        model = StageMemoryModel(cost, precision="full")
        for sp, stt in zip(specs, states):
            w, m, g, o, a = model.layer_components(sp, stt, 1)
            assert m == 0  # no fp32 master copy
            active = sp.param_count * (1.0 - stt.sparsity)
            if stt.sparsity > 0:
                assert w == int(active * 8)  # fp32 CSR values + index
            else:
                assert w == sp.param_count * 4
            if stt.frozen:
                assert g == 0 and o == 0
            else:
                assert g == int(active * 4)
                assert o == int(active * 4 * cost.opt_states)
            # fp32 activations: 2x the dtype_bytes=2 mixed figure
            mixed = StageMemoryModel(cost, precision="mixed")
            assert a == pytest.approx(
                2 * mixed.layer_components(sp, stt, 1)[4], abs=4
            )

    def test_in_flight_counts(self, cost):
        m_gpipe = StageMemoryModel(cost, schedule="gpipe", num_micro=16)
        m_zb = StageMemoryModel(cost, schedule="zb", num_micro=16)
        m_1f1b = StageMemoryModel(cost, schedule="1f1b", num_micro=16)
        for s in range(8):
            assert m_gpipe.in_flight(s, 8) == 16
            assert m_zb.in_flight(s, 8) == max(1, min(16, 8 - s))
            assert m_1f1b.in_flight(s, 8) == m_zb.in_flight(s, 8)
        assert m_zb.worst_in_flight(8) == 8
        assert m_gpipe.worst_in_flight(8) == 16

    def test_recompute_holds_one_micro_batch(self, cost):
        model = StageMemoryModel(
            cost, schedule="gpipe", num_micro=32, activation_recompute=True
        )
        assert all(model.in_flight(s, 8) == 1 for s in range(8))

    def test_knob_validation(self, cost):
        with pytest.raises(ValueError):
            StageMemoryModel(cost, schedule="interleaved")
        with pytest.raises(ValueError):
            StageMemoryModel(cost, num_micro=0)
        with pytest.raises(ValueError):
            StageMemoryModel(cost, precision="fp8")
        with pytest.raises(ValueError):
            StageMemoryModel(cost, limit_bytes=0)
        with pytest.raises(ValueError):
            StageMemoryModel(cost).in_flight(9, 8)
        assert set(SCHEDULES) == {"gpipe", "1f1b", "zb"}
        assert set(PRECISIONS) == {"mixed", "full"}

    def test_memoisation_is_transparent(self, specs, cost):
        model = StageMemoryModel(cost)
        states = _varied_states(len(specs))
        first = model.layer_bytes(states, 4)
        assert model.layer_bytes(states, 4) == first
        states[2].sparsity = 0.9  # same objects, new value: fresh key
        assert model.layer_bytes(states, 4) != first


class TestGPURegistry:
    def test_models_present(self):
        assert GPU_MODELS["a100"].memory_bytes == 40 * GIB
        assert GPU_MODELS["a100-80g"].memory_bytes == 80 * GIB
        assert GPU_MODELS["h100"].memory_bytes == 80 * GIB

    def test_unknown_model_lists_known_names(self):
        with pytest.raises(ValueError, match="a100-80g"):
            parse_cluster("1x4:tpu")


class TestValidateMemory:
    def test_heterogeneous_per_stage_capacity(self, specs, cost):
        """Per-node capacity, never the cluster-wide minimum: the stage
        on the H100 node gets 80 GiB even though an A100 node exists."""
        topo = parse_cluster("1x2+1x2:a100")
        placement = make_placement(topo, num_stages=4, dp_ways=1)
        plan = PipelinePlan.uniform(len(specs), 4)
        model = StageMemoryModel(cost, schedule="zb", num_micro=8)
        reports = validate_memory(
            model, plan, fresh_states(len(specs)), placement=placement
        )
        caps = [r.capacity_bytes for r in reports]
        assert caps[0] == caps[1] == 80 * GIB  # H100 node
        assert caps[2] == caps[3] == 40 * GIB  # A100 node
        assert all(r.ranks for r in reports)
        assert all(r.fits for r in reports)

    def test_limit_clips_capacity(self, specs, cost):
        topo = parse_cluster("1x4")
        placement = make_placement(topo, num_stages=4, dp_ways=1)
        plan = PipelinePlan.uniform(len(specs), 4)
        model = StageMemoryModel(cost, limit_bytes=1 * GIB)
        reports = validate_memory(
            model, plan, fresh_states(len(specs)), placement=placement
        )
        assert all(r.capacity_bytes == 1 * GIB for r in reports)

    def test_stage_count_mismatch_raises(self, specs, cost):
        topo = parse_cluster("1x4")
        placement = make_placement(topo, num_stages=4, dp_ways=1)
        plan = PipelinePlan.uniform(len(specs), 2)
        with pytest.raises(ValueError, match="stages"):
            validate_memory(
                StageMemoryModel(cost), plan, fresh_states(len(specs)),
                placement=placement,
            )

    def test_report_serialisation(self, specs, cost):
        plan = PipelinePlan.uniform(len(specs), 2)
        model = StageMemoryModel(cost)
        (rep, _) = validate_memory(model, plan, fresh_states(len(specs)))
        d = rep.as_dict()
        assert d["total_bytes"] == rep.total_bytes
        assert d["fits"] is True
        assert rep.headroom_bytes == rep.capacity_bytes - rep.total_bytes


class TestPerDestinationRepack:
    def test_scalar_broadcasts(self):
        a = first_fit_repack([10.0, 10.0], [1, 1], max_mem=25.0)
        b = first_fit_repack([10.0, 10.0], [1, 1], max_mem=[25.0, 25.0])
        assert a.active_workers == b.active_workers

    def test_destination_capacity_binds(self):
        """The merge guard prices the *destination* rank's capacity —
        a big source can merge into a big destination even when a small
        rank exists (the pre-fix scalar min would have refused)."""
        # dst 1 small: 30+30 !< 50 -> no merge
        res = first_fit_repack([30.0, 30.0], [1, 1], max_mem=[100.0, 50.0])
        assert res.num_active == 2
        # dst 1 big: 30+30 < 100 -> merge
        res = first_fit_repack([30.0, 30.0], [1, 1], max_mem=[50.0, 100.0])
        assert res.num_active == 1
        assert res.active_workers == [0, 1]

    def test_hetero_2x8_2x4_a100_regression(self, specs, cost):
        """Regression for the scalar-capacity bug on '2x8+2x4:a100':
        stages placed on 80 GiB H100 ranks may absorb merges that the
        40 GiB A100 ranks cannot — a single scalar (min) capacity
        would forbid the H100 merges, a single scalar (max) would OOM
        the A100s."""
        topo = parse_cluster("2x8+2x4:a100")
        placement = make_placement(
            topo, num_stages=8, dp_ways=1, strategy="scattered"
        )
        caps = [float(c) for c in placement.stage_capacities()]
        assert 40.0 * GIB in caps and 80.0 * GIB in caps
        plan = PipelinePlan.uniform(len(specs), 8)
        # 30 GiB per stage: fits everywhere, pairwise-merges only on H100
        mem = np.full(8, 30.0 * GIB)
        new_plan, result = repack_plan(plan, mem, caps, target_num_workers=1)
        assert 1 <= result.num_active < 8
        for worker, (m, active) in enumerate(
            zip(result.mem_usage, result.active_workers)
        ):
            if active:
                assert m <= caps[worker]
        # the scalar min-capacity would have refused every merge
        scalar = repack_plan(plan, mem, min(caps), target_num_workers=1)[1]
        assert scalar.num_active == 8

    def test_vector_validation(self):
        with pytest.raises(ValueError, match="capacities"):
            first_fit_repack([1.0, 1.0], [1, 1], max_mem=[10.0])
        with pytest.raises(ValueError):
            first_fit_repack([1.0, 1.0], [1, 1], max_mem=[10.0, 0.0])

    def test_plan_feasible_vector(self):
        plan = PipelinePlan.uniform(8, 4)
        mem = np.ones(8)
        assert LoadBalancer.plan_feasible(plan, mem, np.full(4, 2.0))
        caps = np.array([2.0, 2.0, 2.0, 1.0])
        assert not LoadBalancer.plan_feasible(plan, mem, caps)
        with pytest.raises(ValueError):
            LoadBalancer.plan_feasible(plan, mem, np.ones(3))
        assert LoadBalancer.scalar_capacity(caps) == 1.0
        assert LoadBalancer.scalar_capacity(None) is None
        assert LoadBalancer.scalar_capacity(7.0) == 7.0


class TestHypothesisProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        mem=st.lists(st.floats(1.0, 40.0), min_size=2, max_size=10),
        data=st.data(),
    )
    def test_repack_never_overflows_destination(self, mem, data):
        """Whenever every worker starts within its own capacity, no
        greedy merge may push an active worker past it."""
        caps = data.draw(
            st.lists(
                st.floats(1.0, 120.0),
                min_size=len(mem),
                max_size=len(mem),
            )
        )
        caps = [max(c, m + 0.5) for c, m in zip(caps, mem)]
        res = first_fit_repack(mem, [1] * len(mem), caps)
        for worker, (m, active) in enumerate(
            zip(res.mem_usage, res.active_workers)
        ):
            if active:
                assert m <= caps[worker] + 1e-9

    @settings(
        max_examples=30,
        deadline=None,
        # specs/cost are read-only model descriptions; sharing them
        # across generated examples is sound
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_surviving_placements_still_validate(self, specs, cost, data):
        """A placement that shrinks (after_repack) and regrows
        (after_regrow) under the memory model keeps producing plans
        that validate against the survivors' own capacities."""
        topo = parse_cluster("1x4+1x4:a100")
        placement = make_placement(topo, num_stages=8, dp_ways=1)
        model = StageMemoryModel(cost, schedule="zb", num_micro=8)
        states = fresh_states(len(specs))
        surviving = sorted(
            data.draw(
                st.sets(st.integers(0, 7), min_size=1, max_size=7)
            )
        )
        shrunk = placement.after_repack(list(surviving))
        n = shrunk.num_stages
        mem = np.asarray(
            model.layer_bytes(states, model.worst_in_flight(n)), dtype=float
        )
        cap = float(min(shrunk.stage_capacities()))
        try:
            plan = partition_balanced(mem, min(n, len(mem)), mem, cap)
        except ValueError:
            return  # genuinely infeasible shrink: nothing to validate
        if plan.num_stages != n:
            return
        reports = validate_memory(model, plan, states, placement=shrunk)
        assert all(r.fits for r in reports)
        # regrow back to the full placement round-trips exactly
        dropped = [s for s in range(8) if s not in surviving]
        if dropped:
            regrown = shrunk.after_regrow(
                [(s, placement.dp_group(s)) for s in dropped]
            )
            assert regrown == placement


class TestParseMemoryLimit:
    def test_values(self):
        assert parse_memory_limit(None) == (False, None)
        assert parse_memory_limit("") == (False, None)
        assert parse_memory_limit("auto") == (True, None)
        assert parse_memory_limit("40e9") == (True, 40e9)
        assert parse_memory_limit(1.5e9) == (True, 1.5e9)
        with pytest.raises(ValueError):
            parse_memory_limit("-1")
        with pytest.raises(ValueError):
            parse_memory_limit("lots")


class TestTrainerOOM:
    def test_initial_placement_raises(self):
        setup = build_scenario(
            "pruning", num_layers=24, pp_stages=4, dp_ways=1, iterations=10
        )
        trainer = make_trainer(
            setup, "megatron", iterations=10, memory_limit=1e6
        )
        with pytest.raises(PlacementOOMError) as exc_info:
            trainer.run()
        err = exc_info.value
        assert err.context == "initial placement"
        assert err.reports and not all(r.fits for r in err.reports)
        assert "GiB" in str(err)

    def test_oom_error_pickles(self):
        import pickle

        setup = build_scenario(
            "pruning", num_layers=24, pp_stages=4, dp_ways=1, iterations=10
        )
        trainer = make_trainer(
            setup, "megatron", iterations=10, memory_limit=1e6
        )
        try:
            trainer.run()
        except PlacementOOMError as exc:
            clone = pickle.loads(pickle.dumps(exc))
            assert clone.context == exc.context
            assert len(clone.reports) == len(exc.reports)
        else:  # pragma: no cover - guarded by the test above
            pytest.fail("expected PlacementOOMError")

    def test_resplit_policy_recovers_when_feasible(self):
        """Pick a limit between the uniform split's peak and the
        memory-balanced split's peak: "raise" dies, "resplit" trains.

        gpipe holds all micro-batches in flight on every stage, so the
        uniform-by-count split (heavy embedding stage) has real
        headroom over the memory-balanced contiguous split."""
        setup = build_scenario(
            "pruning", num_layers=24, pp_stages=4, dp_ways=1, iterations=10
        )
        probe = make_trainer(setup, "megatron", iterations=10, schedule="gpipe")
        model = StageMemoryModel(
            setup.cost, schedule="gpipe", num_micro=probe.cfg.micro_batches
        )
        states = probe.states
        uniform_peak = max(model.plan_stage_bytes(probe.plan, states))
        mem = np.asarray(
            model.layer_bytes(states, model.worst_in_flight(4)), dtype=float
        )
        balanced = partition_balanced(mem, 4, mem, None)
        balanced_peak = max(model.plan_stage_bytes(balanced, states))
        assert balanced_peak < uniform_peak  # gpipe guarantees slack
        limit = (uniform_peak + balanced_peak) / 2
        with pytest.raises(PlacementOOMError):
            make_trainer(
                setup, "megatron", iterations=10,
                schedule="gpipe", memory_limit=limit,
            ).run()
        res = make_trainer(
            setup,
            "megatron",
            iterations=10,
            schedule="gpipe",
            memory_limit=limit,
            oom_policy="resplit",
        ).run()
        assert res.oom_events >= 1
        assert 0 < res.peak_stage_bytes <= limit

    def test_healthy_run_records_peak(self):
        setup = build_scenario(
            "pruning", num_layers=24, pp_stages=4, dp_ways=1, iterations=10
        )
        res = make_trainer(
            setup, "dynmo-partition", iterations=10, memory_limit="auto"
        ).run()
        assert res.peak_stage_bytes > 0
        assert res.oom_events == 0

    def test_default_knobs_record_nothing(self):
        setup = build_scenario(
            "pruning", num_layers=24, pp_stages=4, dp_ways=1, iterations=10
        )
        res = make_trainer(setup, "dynmo-partition", iterations=10).run()
        assert res.peak_stage_bytes == 0.0
        assert res.oom_events == 0

    def test_bad_policy_rejected(self):
        setup = build_scenario(
            "pruning", num_layers=24, pp_stages=4, dp_ways=1, iterations=10
        )
        with pytest.raises(ValueError):
            make_trainer(
                setup, "megatron", iterations=10,
                memory_limit="auto", oom_policy="panic",
            )


def _spec(**kw):
    base = dict(
        scenario="pruning",
        mode="dynmo-partition",
        num_layers=24,
        pp_stages=4,
        dp_ways=1,
        iterations=15,
    )
    base.update(kw)
    return RunSpec(**base)


class TestOrchestratedOOM:
    def test_execute_spec_oom_record(self):
        rec = execute_spec(_spec(memory_limit="1e6"))
        assert rec.status == "oom"
        assert rec.error_type == "PlacementOOMError"
        assert rec.metrics["oom_context"] == "initial placement"
        assert rec.metrics["stage_reports"]
        assert any(
            not r["fits"] for r in rec.metrics["stage_reports"]
        )

    def test_oom_is_deterministic_and_cacheable(self, tmp_path):
        spec = _spec(memory_limit="1e6")
        a = execute_spec(spec)
        b = execute_spec(spec)
        assert a.to_dict()["metrics"] == b.to_dict()["metrics"]
        cache = ResultCache(tmp_path)
        cache.put(a)
        served = cache.get(spec)
        assert served is not None and served.cached
        assert served.status == "oom"

    def test_failed_runs_stay_uncacheable(self, tmp_path):
        rec = execute_spec(_spec(num_layers=24))
        rec.status = "error"
        cache = ResultCache(tmp_path)
        cache.put(rec)
        assert cache.get(rec.spec) is None

    def test_batched_mixed_ok_and_oom(self):
        specs = [_spec(), _spec(memory_limit="1e6")]
        with SweepRunner(policy=ExecutionPolicy("batched")) as runner:
            records = runner.run(specs)
        assert [r.status for r in records] == ["ok", "oom"]
        assert records[1].metrics["stage_reports"]

    def test_memory_knobs_hash_and_label(self):
        base = _spec()
        assert base.precision == "mixed" and base.memory_limit == ""
        for variant in (
            _spec(precision="full"),
            _spec(recompute=True),
            _spec(memory_limit="auto"),
        ):
            assert variant.spec_hash != base.spec_hash
        assert "full" in _spec(precision="full").label
        assert "recompute" in _spec(recompute=True).label
        assert "mem-auto" in _spec(memory_limit="auto").label
        assert "full" not in base.label

    def test_ok_run_reports_memory_metrics(self):
        rec = execute_spec(_spec(memory_limit="auto"))
        assert rec.status == "ok"
        assert rec.metrics["peak_stage_bytes"] > 0
        assert rec.metrics["oom_events"] == 0


class TestDifferentialGoldens:
    @pytest.mark.parametrize("knobs", [
        {},
        {"recompute": True},
        {"precision": "full"},
        {"schedule": "1f1b", "cluster": "2x8+2x4:a100", "pp_stages": 8},
        {"memory_limit": "auto", "placement": "scattered"},
    ])
    def test_serial_and_batched_agree(self, knobs):
        """The knobs must be priced identically by the scalar and the
        batched engine — including recompute's backward inflation."""
        spec = _spec(**knobs)
        serial = execute_spec(spec)
        with SweepRunner(policy=ExecutionPolicy("batched")) as runner:
            (batched,) = runner.run([spec])
        assert serial.status == batched.status == "ok"
        assert serial.metrics == batched.metrics

    def test_memory_knobs_do_not_change_timing(self):
        """precision/enforcement affect byte accounting only: a run
        that fits produces the exact timing of the unenforced run."""
        plain = execute_spec(_spec())
        limited = execute_spec(_spec(memory_limit="auto"))
        full = execute_spec(_spec(precision="full", memory_limit="auto"))
        for key in ("tokens_per_s", "mean_bubble_ratio", "total_time_s"):
            assert plain.metrics[key] == limited.metrics[key]
            assert plain.metrics[key] == full.metrics[key]

    def test_determinism_across_processes(self):
        spec = _spec(memory_limit="auto")
        a, b = execute_spec(spec), execute_spec(spec)
        assert a.metrics == b.metrics


class TestFacade:
    def test_api_exports(self):
        assert repro.StageMemoryModel is StageMemoryModel
        assert repro.PlacementOOMError is PlacementOOMError
        assert repro.StageMemoryReport.__name__ == "StageMemoryReport"
        for name in (
            "StageMemoryModel", "StageMemoryReport", "PlacementOOMError"
        ):
            assert name in repro.api.__all__
            assert name in repro.__all__
