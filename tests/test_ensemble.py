"""Monte-Carlo fault ensembles and segmented (piecewise-static) batching.

Two invariants anchor this file:

1. **Bit-identity** — a trace-driven run decomposed into piecewise-
   static segments and pre-simulated through the batched engine must
   produce results bitwise equal to the same run stepped scalar
   iteration by iteration (differential golden tests over failure /
   preemption / straggler / recovery traces).
2. **Determinism** — ensemble percentile summaries must be identical
   across inline / pool / batched execution backends and across cached
   re-runs (nearest-rank percentiles pick actual samples).
"""

from __future__ import annotations

import pytest

from repro.cluster.events import ClusterEvent, ClusterEventTrace
from repro.experiments.common import build_scenario, make_trainer
from repro.orchestrator import (
    ExecutionPolicy,
    ResultCache,
    RunSpec,
    TraceDistribution,
    percentile_nearest,
    run_ensemble,
    sample_specs,
)
import repro.pipeline.batched as batched_mod


# ---------------------------------------------------------------------------
# segment boundaries


class TestSegmentBoundaries:
    def test_empty_trace_has_no_boundaries(self):
        assert ClusterEventTrace().segment_boundaries() == ()

    def test_events_and_straggler_expiries(self):
        trace = ClusterEventTrace(
            (
                ClusterEvent(5, "failure", (1,)),
                ClusterEvent(20, "recovery", (1,)),
                ClusterEvent(8, "straggler", (2,), duration=4, slowdown=2.0),
            )
        )
        # 8+4=12 is the straggler expiry: the slowdown map changes there
        assert trace.segment_boundaries() == (5, 8, 12, 20)

    def test_coincident_marks_deduplicate(self):
        trace = ClusterEventTrace(
            (
                ClusterEvent(4, "straggler", (0,), duration=6, slowdown=1.5),
                ClusterEvent(10, "failure", (1,)),
            )
        )
        assert trace.segment_boundaries() == (4, 10)


# ---------------------------------------------------------------------------
# differential golden tests: segmented-batched == scalar, bit for bit


def _run_pair(trace, mode="megatron", iterations=40, dp_ways=1):
    """Run the same trace scalar and segmented-batched; return both results."""
    results = []
    for prewarm in (False, True):
        setup = build_scenario(
            "pruning", num_layers=24, pp_stages=8, dp_ways=dp_ways,
            iterations=iterations,
        )
        trainer = make_trainer(
            setup, mode, iterations=iterations, balance_cost="modeled",
            cluster_events=trace,
        )
        results.append(trainer.run(prewarm=prewarm))
    return results


def _assert_identical(scalar, warmed):
    assert warmed.total_time_s == scalar.total_time_s
    assert warmed.makespan_history == scalar.makespan_history
    assert warmed.bubble_history == scalar.bubble_history
    assert warmed.stage_count_history == scalar.stage_count_history
    assert warmed.overhead_s == scalar.overhead_s
    assert warmed.cluster_events_applied == scalar.cluster_events_applied
    assert warmed.final_stage_ranks == scalar.final_stage_ranks


class TestSegmentedPrewarmBitIdentity:
    def test_failure_and_recovery(self):
        trace = ClusterEventTrace(
            (
                ClusterEvent(6, "failure", (2,)),
                ClusterEvent(22, "recovery", (2,)),
            )
        )
        _assert_identical(*_run_pair(trace))

    def test_permanent_preemption(self):
        trace = ClusterEventTrace((ClusterEvent(9, "preemption", (5,)),))
        _assert_identical(*_run_pair(trace))

    def test_straggler_window(self):
        trace = ClusterEventTrace(
            (ClusterEvent(7, "straggler", (1,), duration=10, slowdown=2.5),)
        )
        _assert_identical(*_run_pair(trace))

    def test_generated_mixed_trace(self):
        trace = ClusterEventTrace.generate(
            iterations=40, num_ranks=8, seed=3,
            failure_rate=0.05, straggler_rate=0.08, recover_after=12,
            straggler_duration=6, straggler_slowdown=2.0,
        )
        assert trace  # the seed must actually produce events
        _assert_identical(*_run_pair(trace))

    def test_balanced_mode_with_events(self):
        trace = ClusterEventTrace(
            (
                ClusterEvent(5, "failure", (3,)),
                ClusterEvent(18, "recovery", (3,)),
                ClusterEvent(24, "straggler", (0,), duration=8, slowdown=1.7),
            )
        )
        _assert_identical(*_run_pair(trace, mode="dynmo-partition"))

    def test_prewarm_simulates_segments_batched(self):
        """The scout must find >= 2 distinct keys and run them as
        batched lanes, not fall back to scalar per-key calls."""
        trace = ClusterEventTrace(
            (
                ClusterEvent(6, "failure", (2,)),
                ClusterEvent(22, "recovery", (2,)),
            )
        )
        setup = build_scenario(
            "pruning", num_layers=24, pp_stages=8, dp_ways=1, iterations=40
        )
        trainer = make_trainer(
            setup, "megatron", iterations=40, balance_cost="modeled",
            cluster_events=trace,
        )
        batched_mod.stats.reset()
        warmed = trainer.prewarm(40)
        assert warmed >= 2
        assert batched_mod.stats.batched_lanes >= warmed
        assert batched_mod.stats.scalar_unbatchable == 0


# ---------------------------------------------------------------------------
# percentile + sampling plumbing


class TestPercentileNearest:
    def test_picks_actual_samples(self):
        vals = [3.0, 1.0, 2.0, 4.0]
        assert percentile_nearest(vals, 50) == 2.0
        assert percentile_nearest(vals, 99) == 4.0
        assert percentile_nearest(vals, 1) == 1.0

    def test_single_value(self):
        assert percentile_nearest([7.5], 50) == 7.5
        assert percentile_nearest([7.5], 99) == 7.5

    def test_empty_is_nan(self):
        import math

        assert math.isnan(percentile_nearest([], 50))


class TestSampleSpecs:
    def base(self):
        return RunSpec(
            scenario="pruning", mode="megatron", num_layers=24,
            pp_stages=4, dp_ways=1, iterations=20,
        )

    def test_draws_are_seed_deterministic(self):
        a = sample_specs(self.base(), 8, seed0=5)
        b = sample_specs(self.base(), 8, seed0=5)
        assert [s.spec_hash for s in a] == [s.spec_hash for s in b]

    def test_seed0_shifts_the_draws(self):
        a = sample_specs(self.base(), 4, seed0=0)
        b = sample_specs(self.base(), 4, seed0=1)
        # draw i of b is draw i+1 of a (same generator, shifted window)
        assert a[1].spec_hash == b[0].spec_hash

    def test_empty_traces_collapse_to_event_free_spec(self):
        dist = TraceDistribution(failure_rate=0.0, straggler_rate=0.0)
        specs = sample_specs(self.base(), 6, dist)
        assert len({s.spec_hash for s in specs}) == 1
        assert specs[0].cluster_events == ""

    def test_rejects_non_positive_n(self):
        with pytest.raises(ValueError, match="positive"):
            sample_specs(self.base(), 0)


# ---------------------------------------------------------------------------
# ensemble determinism across backends and caching


class TestRunEnsemble:
    def base(self):
        return RunSpec(
            scenario="pruning", mode="megatron", num_layers=24,
            pp_stages=4, dp_ways=1, iterations=20,
        )

    def dist(self):
        return TraceDistribution(
            failure_rate=0.05, straggler_rate=0.08, recover_after=8,
            straggler_duration=4,
        )

    def test_summary_shape(self):
        res = run_ensemble(self.base(), 6, distribution=self.dist())
        assert res.n == 6 and len(res.stats) == 1
        s = res.stats[0]
        assert s.draws == 6
        assert s.ok + s.failed == 6
        assert s.iter_time_p50 <= s.iter_time_p99
        assert s.label == "pruning/megatron/zb"
        assert 1 <= res.num_unique <= 6
        # CDF is monotone and ends at 1.0
        fracs = [p for _, p in s.recovery_cost_cdf]
        assert fracs == sorted(fracs) and fracs[-1] == pytest.approx(1.0)
        # survivability is a fraction per recorded iteration
        assert all(0.0 <= p <= 1.0 for _, p in s.survivability)

    def test_identical_across_backends(self):
        policies = [
            ExecutionPolicy("inline"),
            ExecutionPolicy("pool", workers=2),
            ExecutionPolicy("batched"),
        ]
        dicts = [
            run_ensemble(
                self.base(), 5, p, distribution=self.dist(), seed0=2
            ).to_dict()
            for p in policies
        ]
        assert dicts[0] == dicts[1] == dicts[2]

    def test_cached_rerun_is_full_hit_and_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_ensemble(
            self.base(), 5, distribution=self.dist(), cache=cache
        )
        assert not first.full_cache_hit
        again = run_ensemble(
            self.base(), 5, distribution=self.dist(), cache=cache
        )
        assert again.full_cache_hit
        assert again.num_cached == again.num_unique
        # identical distributions; only the cache provenance may differ
        a, b = first.to_dict(), again.to_dict()
        a.pop("num_cached"), b.pop("num_cached")
        assert a == b

    def test_multiple_base_specs_group_separately(self):
        bases = [self.base(), self.base().with_(mode="dynmo-partition")]
        res = run_ensemble(bases, 3, distribution=self.dist())
        assert [s.label for s in res.stats] == [
            "pruning/megatron/zb", "pruning/dynmo-partition/zb",
        ]
        assert all(s.draws == 3 for s in res.stats)

    def test_duplicate_draws_execute_once(self):
        dist = TraceDistribution(failure_rate=0.0, straggler_rate=0.0)
        res = run_ensemble(self.base(), 8, distribution=dist)
        assert res.num_unique == 1
        assert res.stats[0].draws == 8 and res.stats[0].unique == 1

    def test_rejects_empty_bases(self):
        with pytest.raises(ValueError, match="at least one"):
            run_ensemble([], 4)
