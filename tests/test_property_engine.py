"""Property-based tests for the pipeline engine and plans."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.repack import first_fit_repack
from repro.model.cost import LayerState, ModelCost, build_layer_specs, fresh_states
from repro.model.config import GPTConfig
from repro.pipeline import PipelineEngine, PipelinePlan


def small_cost():
    cfg = GPTConfig("p", num_layers=6, hidden=256, num_heads=4, seq_len=128, vocab_size=1000)
    return ModelCost(build_layer_specs(cfg))


COST = small_cost()
NLAYERS = len(COST.specs)


@st.composite
def random_states(draw):
    states = []
    for _ in range(NLAYERS):
        states.append(
            LayerState(
                sparsity=draw(st.sampled_from([0.0, 0.5, 0.9])),
                frozen=draw(st.booleans()),
                attn_density=draw(st.floats(min_value=0.05, max_value=1.0)),
                token_fraction=draw(st.floats(min_value=0.05, max_value=1.0)),
                moe_multiplier=draw(st.floats(min_value=1.0, max_value=3.0)),
            )
        )
    return states


class TestEngineProperties:
    @given(
        states=random_states(),
        stages=st.integers(1, 4),
        micro=st.integers(1, 8),
        schedule=st.sampled_from(["gpipe", "1f1b", "zb"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_makespan_bounds(self, states, stages, micro, schedule):
        """max(busy) <= makespan <= sum of all work (sequential)."""
        eng = PipelineEngine(COST, None, schedule=schedule, num_micro=micro)
        plan = PipelinePlan.uniform(NLAYERS, stages)
        res = eng.run_iteration(plan, states)
        assert res.makespan >= res.busy.max() - 1e-12
        total_work = res.busy.sum()
        assert res.makespan <= total_work + 1e-9
        assert 0.0 <= res.bubble_ratio() <= 1.0

    @given(states=random_states(), micro=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_work_conservation_across_schedules(self, states, micro):
        """All schedules execute the same total compute."""
        plan = PipelinePlan.uniform(NLAYERS, 3)
        totals = []
        for sched in ("gpipe", "1f1b", "zb"):
            eng = PipelineEngine(COST, None, schedule=sched, num_micro=micro)
            totals.append(eng.run_iteration(plan, states).busy.sum())
        assert totals[0] == pytest.approx(totals[1], rel=1e-9)
        assert totals[0] == pytest.approx(totals[2], rel=1e-9)

    @given(states=random_states())
    @settings(max_examples=30, deadline=None)
    def test_zb_no_slower_than_1f1b(self, states):
        plan = PipelinePlan.uniform(NLAYERS, 3)
        t1 = PipelineEngine(COST, None, schedule="1f1b", num_micro=6).run_iteration(
            plan, states
        )
        t2 = PipelineEngine(COST, None, schedule="zb", num_micro=6).run_iteration(
            plan, states
        )
        assert t2.makespan <= t1.makespan + 1e-9


class TestPlanProperties:
    @given(
        n=st.integers(2, 60),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_uniform_plan_invariants(self, n, data):
        s = data.draw(st.integers(1, n))
        plan = PipelinePlan.uniform(n, s)
        sizes = plan.stage_sizes()
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1
        for layer in range(n):
            st_idx = plan.stage_of(layer)
            assert layer in plan.stage_layers(st_idx)


class TestRepackProperties:
    @given(
        mems=st.lists(st.floats(min_value=0.1, max_value=10), min_size=2, max_size=10),
        cap=st.floats(min_value=5, max_value=50),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_repack_invariants(self, mems, cap, data):
        target = data.draw(st.integers(1, len(mems)))
        layers = [1] * len(mems)
        res = first_fit_repack(mems, layers, max_mem=cap, target_num_workers=target)
        # memory conserved
        assert sum(res.mem_usage) == pytest.approx(sum(mems))
        # target floor respected
        assert res.num_active >= min(target, len(mems))
        # no active worker above capacity unless it started above
        for i, (m0, m1) in enumerate(zip(mems, res.mem_usage)):
            if res.active_workers[i] and m1 > m0:
                assert m1 < cap
        # inactive workers hold nothing
        for i, a in enumerate(res.active_workers):
            if not a:
                assert res.mem_usage[i] == 0.0
