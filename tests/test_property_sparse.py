"""Property-based tests for the CSR substrate and Algorithm 1."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.dynamics.pruning import GlobalMagnitudePruner
from repro.sparse import CSRMatrix


dense_matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 12), st.integers(1, 12)),
    elements=st.floats(min_value=-10, max_value=10, allow_nan=False, width=64),
)


class TestCSRProperties:
    @given(m=dense_matrices)
    @settings(max_examples=80, deadline=None)
    def test_roundtrip(self, m):
        assert np.allclose(CSRMatrix.from_dense(m).to_dense(), m)

    @given(m=dense_matrices)
    @settings(max_examples=60, deadline=None)
    def test_transpose_involution(self, m):
        csr = CSRMatrix.from_dense(m)
        assert np.allclose(csr.transpose().transpose().to_dense(), m)

    @given(m=dense_matrices, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_spmm_matches_dense(self, m, data):
        k = m.shape[1]
        cols = data.draw(st.integers(1, 6))
        B = data.draw(
            arrays(
                np.float64,
                (k, cols),
                elements=st.floats(min_value=-5, max_value=5, allow_nan=False, width=64),
            )
        )
        assert np.allclose(CSRMatrix.from_dense(m).matmul_dense(B), m @ B, atol=1e-9)

    @given(m=dense_matrices)
    @settings(max_examples=60, deadline=None)
    def test_nnz_consistency(self, m):
        csr = CSRMatrix.from_dense(m)
        assert csr.nnz == np.count_nonzero(m)
        assert csr.density() == pytest.approx(
            np.count_nonzero(m) / m.size if m.size else 0.0
        )


class TestAlgorithm1Properties:
    @given(
        sizes=st.lists(st.integers(5, 60), min_size=2, max_size=5),
        sparsity=st.floats(min_value=0.0, max_value=0.95),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_keep_count_matches_target(self, sizes, sparsity, seed):
        """Algorithm 1 keeps ~(1-s) of the global parameter count,
        regardless of how parameters shard across ranks."""
        rng = np.random.default_rng(seed)
        shards = [rng.normal(size=n) for n in sizes]
        keeps = GlobalMagnitudePruner(len(shards)).prune(shards, sparsity)
        total = sum(n for n in sizes)
        kept = sum(int(k.sum()) for k in keeps)
        target = round(total * (1 - sparsity))
        assert abs(kept - target) <= max(2, int(0.02 * total))

    @given(
        sparsity=st.floats(min_value=0.1, max_value=0.9),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=15, deadline=None)
    def test_kept_weights_dominate_pruned(self, sparsity, seed):
        """Every kept weight's magnitude >= every pruned weight's."""
        rng = np.random.default_rng(seed)
        shards = [rng.normal(size=50) for _ in range(3)]
        keeps = GlobalMagnitudePruner(3).prune(shards, sparsity)
        kept_mags = np.concatenate(
            [np.abs(s)[k] for s, k in zip(shards, keeps)]
        )
        pruned_mags = np.concatenate(
            [np.abs(s)[~k] for s, k in zip(shards, keeps)]
        )
        if kept_mags.size and pruned_mags.size:
            assert kept_mags.min() >= pruned_mags.max() - 1e-12
