"""The stable facade (repro.api) and the ExecutionPolicy redesign."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.orchestrator.runner import ExecutionPolicy, SweepRunner


def tiny(**kwargs) -> repro.RunSpec:
    base = dict(
        scenario="pruning", mode="megatron", num_layers=24,
        pp_stages=4, dp_ways=1, iterations=20,
    )
    base.update(kwargs)
    return repro.RunSpec(**base)


class TestFacade:
    def test_top_level_exports(self):
        for name in (
            "RunSpec", "ExecutionPolicy", "TraceDistribution",
            "EnsembleResult", "simulate", "sweep", "ensemble",
        ):
            assert hasattr(repro, name), name

    def test_simulate_single_spec(self):
        record = repro.simulate(tiny())
        assert record.ok and record.metrics["tokens_per_s"] > 0

    def test_sweep_defaults_to_batched(self):
        records = repro.sweep([tiny(), tiny(seed=1)])
        assert [r.ok for r in records] == [True, True]
        inline = repro.sweep(
            [tiny(), tiny(seed=1)], repro.ExecutionPolicy("inline")
        )
        for a, b in zip(records, inline):
            assert a.metrics == b.metrics

    def test_sweep_accepts_cache_path(self, tmp_path):
        first = repro.sweep([tiny()], cache=tmp_path / "cache")
        assert not first[0].cached
        again = repro.sweep([tiny()], cache=tmp_path / "cache")
        assert again[0].cached

    def test_fault_tolerance_exports(self):
        for name in ("RetryPolicy", "SweepJournal", "SweepInterrupted"):
            assert hasattr(repro, name), name

    def test_sweep_accepts_journal_path(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        first = repro.sweep([tiny()], journal=journal)
        assert first[0].ok and journal.exists()
        # a second sweep against the same journal serves from it: no
        # cache involved, yet the record comes back without re-running
        again = repro.sweep(
            [tiny()], repro.ExecutionPolicy("inline"), journal=journal
        )
        assert again[0].ok
        assert again[0].metrics == first[0].metrics

    def test_ensemble_facade(self, tmp_path):
        dist = repro.TraceDistribution(failure_rate=0.05, recover_after=8)
        res = repro.ensemble(
            tiny(), 4, distribution=dist, cache=tmp_path / "cache"
        )
        assert isinstance(res, repro.EnsembleResult)
        assert res.stats[0].draws == 4
        assert repro.ensemble(
            tiny(), 4, distribution=dist, cache=tmp_path / "cache"
        ).full_cache_hit

    def test_deep_import_paths_still_work(self):
        # the documented legacy paths must stay importable unchanged
        from repro.orchestrator import RunSpec, SweepRunner  # noqa: F401
        from repro.orchestrator.runner import execute_spec  # noqa: F401
        from repro.pipeline.batched import simulate_many  # noqa: F401


class TestExecutionPolicy:
    def test_defaults(self):
        p = ExecutionPolicy()
        assert p.backend == "inline" and p.workers is None and p.timeout_s is None

    def test_from_jobs_mapping(self):
        assert ExecutionPolicy.from_jobs(0).backend == "batched"
        assert ExecutionPolicy.from_jobs(1).backend == "inline"
        pool = ExecutionPolicy.from_jobs(4)
        assert pool.backend == "pool" and pool.workers == 4
        auto = ExecutionPolicy.from_jobs(None)
        assert auto.backend == "pool" and auto.workers is None

    def test_from_jobs_carries_timeout(self):
        assert ExecutionPolicy.from_jobs(0, 9.5).timeout_s == 9.5

    def test_jobs_view_roundtrip(self):
        assert ExecutionPolicy("batched").jobs == 0
        assert ExecutionPolicy("inline").jobs == 1
        assert ExecutionPolicy("pool", workers=3).jobs == 3
        assert ExecutionPolicy("pool").jobs >= 1  # cpu_count

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ExecutionPolicy("gpu")

    def test_rejects_workers_outside_pool(self):
        with pytest.raises(ValueError, match="workers"):
            ExecutionPolicy("inline", workers=2)
        with pytest.raises(ValueError, match="workers"):
            ExecutionPolicy("pool", workers=0)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            ExecutionPolicy("inline", timeout_s=0.0)


class TestJobsDeprecation:
    def test_jobs_kwarg_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="ExecutionPolicy"):
            runner = SweepRunner(jobs=0)
        assert runner.policy == ExecutionPolicy("batched")
        with pytest.warns(DeprecationWarning):
            runner = SweepRunner(jobs=3, timeout_s=5.0)
        assert runner.policy.backend == "pool"
        assert runner.policy.workers == 3 and runner.policy.timeout_s == 5.0

    def test_default_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            runner = SweepRunner()
        assert runner.policy.backend == "inline"

    def test_policy_and_jobs_together_rejected(self):
        with pytest.raises(ValueError, match="both"):
            SweepRunner(jobs=2, policy=ExecutionPolicy("inline"))

    def test_runner_jobs_property_reflects_policy(self):
        runner = SweepRunner(policy=ExecutionPolicy("pool", workers=5))
        assert runner.jobs == 5

    def test_deprecated_jobs_still_runs(self):
        with pytest.warns(DeprecationWarning):
            runner = SweepRunner(jobs=1)
        records = runner.run([tiny()])
        assert records[0].ok
