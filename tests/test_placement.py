"""Tests for the explicit stage→rank placement layer."""

import numpy as np
import pytest

from repro.cluster.collectives import CommCostModel
from repro.cluster.placement import (
    Placement,
    make_placement,
    node_interleaved_order,
)
from repro.cluster.topology import GPU_MODELS, hetero_cluster
from repro.core.controller import DynMoConfig, DynMoController
from repro.core.profiler import PipelineProfiler
from repro.core.repack import first_fit_repack
from repro.model.cost import fresh_states
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.migration import LayerTransfer, MigrationPlan
from repro.pipeline.plan import PipelinePlan


class TestStrategies:
    def test_packed(self, small_cluster):
        p = make_placement(small_cluster, num_stages=4, dp_ways=2, strategy="packed")
        assert p.stage_ranks(0) == (0, 1, 2, 3)
        assert p.stage_ranks(1) == (4, 5, 6, 7)
        assert p.dp_group(0) == (0, 4)
        assert p.dp_ways == 2 and p.num_stages == 4

    def test_dp_outer(self, small_cluster):
        p = make_placement(small_cluster, num_stages=4, dp_ways=2, strategy="dp-outer")
        assert p.dp_group(0) == (0, 1)
        assert p.dp_group(3) == (6, 7)
        assert p.stage_ranks(0) == (0, 2, 4, 6)

    def test_scattered_round_robins_nodes(self, small_cluster):
        p = make_placement(small_cluster, num_stages=4, strategy="scattered")
        ranks = p.stage_ranks()
        nodes = [small_cluster.node_of(r) for r in ranks]
        # adjacent stages always land on different nodes
        assert all(a != b for a, b in zip(nodes, nodes[1:]))

    def test_interleave_handles_uneven_nodes(self):
        topo = hetero_cluster([3, 1])
        assert node_interleaved_order(topo) == [0, 3, 1, 2]

    def test_unknown_strategy_raises(self, small_cluster):
        with pytest.raises(ValueError, match="strategy"):
            make_placement(small_cluster, 2, strategy="zigzag")

    def test_cluster_too_small_raises(self, small_cluster):
        with pytest.raises(ValueError, match="needs"):
            make_placement(small_cluster, num_stages=8, dp_ways=2)


class TestValidation:
    def test_duplicate_rank_rejected(self, small_cluster):
        with pytest.raises(ValueError, match="twice"):
            Placement(small_cluster, ((0,), (0,)))

    def test_out_of_range_rank_rejected(self, small_cluster):
        with pytest.raises(ValueError, match="out of range"):
            Placement(small_cluster, ((0,), (99,)))

    def test_ragged_grid_rejected(self, small_cluster):
        with pytest.raises(ValueError, match="replicas"):
            Placement(small_cluster, ((0, 1), (2,)))


class TestAfterRepack:
    def test_surviving_ranks_kept(self, small_cluster):
        p = make_placement(small_cluster, num_stages=4)
        q = p.after_repack([1, 3])
        assert q.stage_ranks() == (1, 3)
        assert q.strategy == p.strategy
        assert p.released_ranks([1, 3]) == (0, 2)

    def test_chained_repacks_compose(self, small_cluster):
        p = make_placement(small_cluster, num_stages=8)
        q = p.after_repack([1, 3, 5, 7]).after_repack([0, 2])
        assert q.stage_ranks() == (1, 5)

    def test_empty_or_unsorted_rejected(self, small_cluster):
        p = make_placement(small_cluster, num_stages=4)
        with pytest.raises(ValueError):
            p.after_repack([])
        with pytest.raises(ValueError):
            p.after_repack([3, 1])


class TestHeterogeneousSpeeds:
    def test_worker_speeds_follow_devices(self):
        topo = hetero_cluster(
            [4, 4], gpus=[GPU_MODELS["h100"], GPU_MODELS["a100"]]
        )
        p = make_placement(topo, num_stages=8)
        speeds = p.worker_speeds()
        assert np.allclose(speeds[:4], 1.0)
        assert np.all(speeds[4:] < 0.5)
        assert p.is_heterogeneous()

    def test_homogeneous_is_not_heterogeneous(self, small_cluster):
        p = make_placement(small_cluster, num_stages=4)
        assert not p.is_heterogeneous()

    def test_uniform_non_reference_cluster_is_slower(self, gpt24_cost, gpt24_states):
        """A homogeneous A100 cluster must not simulate at H100 speed."""
        plan = PipelinePlan.uniform(26, 8)

        def makespan(model):
            topo = hetero_cluster([4, 4], gpus=[GPU_MODELS[model]] * 2)
            eng = PipelineEngine(
                gpt24_cost, None, num_micro=8, placement=make_placement(topo, 8)
            )
            return eng.run_iteration(plan, gpt24_states).makespan

        assert makespan("a100") > 2 * makespan("h100")

    def test_engine_slows_down_on_mixed_devices(self, gpt24_cost, gpt24_states):
        fast = hetero_cluster([4, 4])
        slow = hetero_cluster([4, 4], gpus=[GPU_MODELS["h100"], GPU_MODELS["a100"]])
        plan = PipelinePlan.uniform(26, 8)
        t_fast = PipelineEngine(
            gpt24_cost, None, num_micro=8,
            placement=make_placement(fast, 8),
        ).run_iteration(plan, gpt24_states)
        t_slow = PipelineEngine(
            gpt24_cost, None, num_micro=8,
            placement=make_placement(slow, 8),
        ).run_iteration(plan, gpt24_states)
        assert t_slow.makespan > t_fast.makespan


class TestEngineWithPlacement:
    def test_intra_vs_inter_node_makespan_differs(
        self, gpt24_cost, gpt24_states, comm
    ):
        """The same plan priced under packed vs scattered placement."""
        plan = PipelinePlan.uniform(26, 4)
        packed = PipelineEngine(
            gpt24_cost, comm, num_micro=8,
            placement=make_placement(comm.topology, 4, strategy="packed"),
        ).run_iteration(plan, gpt24_states)
        scattered = PipelineEngine(
            gpt24_cost, comm, num_micro=8,
            placement=make_placement(comm.topology, 4, strategy="scattered"),
        ).run_iteration(plan, gpt24_states)
        assert scattered.makespan > packed.makespan

    def test_dp_allreduce_uses_placement_groups(
        self, gpt24_cost, gpt24_states, comm
    ):
        """dp-outer keeps the gradient all-reduce on NVLink."""
        plan = PipelinePlan.uniform(26, 4)

        def run(strategy):
            eng = PipelineEngine(
                gpt24_cost, comm, num_micro=8, dp_ways=2,
                placement=make_placement(comm.topology, 4, 2, strategy),
            )
            return eng.run_iteration(plan, gpt24_states)

        assert run("dp-outer").comm_extra < run("packed").comm_extra

    def test_edge_cost_is_worst_replica(self, gpt24_cost):
        """DP replicas run in lockstep: a pipeline hop costs what the
        worst-placed replica pays (replica 1's 5→6 hop crosses nodes
        even though replica 0's 1→2 hop stays on NVLink)."""
        topo = hetero_cluster([6, 2])
        comm = CommCostModel(topo)
        eng = PipelineEngine(
            gpt24_cost, comm, num_micro=8, dp_ways=2,
            placement=make_placement(topo, 4, dp_ways=2, strategy="packed"),
        )
        nbytes = 1e8
        assert eng._edge_time(1, 2, nbytes) == comm.p2p_time(5, 6, nbytes)
        assert eng._edge_time(0, 1, nbytes) == comm.p2p_time(0, 1, nbytes)

    def test_stage_count_mismatch_raises(self, gpt24_cost, gpt24_states, comm):
        eng = PipelineEngine(
            gpt24_cost, comm, num_micro=8,
            placement=make_placement(comm.topology, 4),
        )
        with pytest.raises(ValueError, match="placement covers"):
            eng.run_iteration(PipelinePlan.uniform(26, 2), gpt24_states)

    def test_dp_mismatch_raises(self, gpt24_cost, gpt24_states, comm):
        eng = PipelineEngine(
            gpt24_cost, comm, num_micro=8, dp_ways=2,
            placement=make_placement(comm.topology, 4, dp_ways=1),
        )
        with pytest.raises(ValueError, match="DP replicas"):
            eng.run_iteration(PipelinePlan.uniform(26, 4), gpt24_states)


class TestPostRepackAccounting:
    """Regression: after a re-pack the surviving ranks — not 0..S-1 —
    must price migration and collectives (ISSUE 2 satellite)."""

    def _repacked_placement(self):
        # 2 nodes x 2 GPUs; 4 stages placed packed: stages {0,1} on
        # node 0, {2,3} on node 1.
        topo = hetero_cluster([2, 2])
        place = make_placement(topo, num_stages=4)
        result = first_fit_repack([1.0] * 4, [6, 6, 7, 7], max_mem=2.5,
                                  target_num_workers=2)
        assert result.surviving == [1, 3]
        return topo, place.after_repack(result.surviving)

    def test_old_stride_mapping_charged_the_wrong_link(self):
        topo, after = self._repacked_placement()
        comm = CommCostModel(topo)
        move = MigrationPlan([LayerTransfer(0, 0, 1, nbytes=10**9)])
        # identity mapping prices new stages 0→1 as ranks 0→1: NVLink
        naive = move.cost_seconds(comm, overlap=0.0)
        # the surviving GPUs are ranks 1 and 3 — an InfiniBand hop
        honest = move.cost_seconds(
            comm, overlap=0.0, src_placement=after, dst_placement=after
        )
        assert after.stage_ranks() == (1, 3)
        assert honest > 5 * naive

    def test_migration_cost_is_worst_replica(self, gpt24_cost):
        """Like the engine's edge pricing, migration charges the
        worst-placed replica's link (replica 1's 5→6 hop is IB)."""
        topo = hetero_cluster([6, 2])
        comm = CommCostModel(topo)
        place = make_placement(topo, 4, dp_ways=2, strategy="packed")
        move = MigrationPlan([LayerTransfer(0, 1, 2, nbytes=10**8)])
        cost = move.cost_seconds(comm, overlap=0.0, src_placement=place)
        assert cost == comm.p2p_time(5, 6, 10**8)
        assert cost > comm.p2p_time(1, 2, 10**8)

    def test_allreduce_group_after_repack_spans_nodes(self):
        topo, after = self._repacked_placement()
        comm = CommCostModel(topo)
        # surviving chain {1, 3} spans both nodes: a collective over it
        # must pay the inter-node link, unlike the naive 0..S-1 group
        assert comm._group_link(list(after.stage_ranks())) is topo.inter_link
        assert comm._group_link([0, 1]) is not topo.inter_link

    def test_controller_tracks_surviving_ranks(self, gpt24_cost, comm):
        states = fresh_states(26)
        for s in states[1:-1]:
            s.sparsity = 0.95
        plan = PipelinePlan.uniform(26, 8)
        rep = PipelineProfiler(gpt24_cost).profile(plan, states)
        ctl = DynMoController(
            gpt24_cost,
            comm,
            DynMoConfig(
                repack=True,
                repack_target_workers=2,
                memory_capacity_bytes=float(rep.worker_memory.sum()),
            ),
            placement=make_placement(comm.topology, 8),
        )
        ctl.rebalance(0, plan, fresh_states(26), iter_time_hint=0.1)
        d = ctl.rebalance(1, plan, states, iter_time_hint=0.1)
        assert d.repacked
        assert d.placement is not None
        survivors = d.placement.stage_ranks()
        assert len(survivors) == d.plan.num_stages
        assert sorted(survivors) == sorted(set(range(8)) - set(d.released_ranks))
        assert ctl.placement is d.placement

    def test_balancer_crash_does_not_commit_repack_state(self, gpt24_cost, comm):
        """A balancer exception after a re-pack must leave the
        controller's placement consistent with the caller's plan, so a
        retry with the same plan works."""

        from repro.core.balancers.base import BalanceResult, LoadBalancer

        class FlakyBalancer(LoadBalancer):
            def __init__(self):
                self.calls = 0

            def rebalance(self, plan, weights, memory_per_layer=None,
                          memory_capacity=None):
                self.calls += 1
                if self.calls == 2:  # crash on the repack invocation
                    raise RuntimeError("boom")
                loads = plan.stage_loads(weights)
                return BalanceResult(plan, loads, loads)

        states = fresh_states(26)
        for s in states[1:-1]:
            s.sparsity = 0.95
        plan = PipelinePlan.uniform(26, 8)
        rep = PipelineProfiler(gpt24_cost).profile(plan, states)
        ctl = DynMoController(
            gpt24_cost,
            comm,
            DynMoConfig(
                repack=True,
                repack_target_workers=2,
                memory_capacity_bytes=float(rep.worker_memory.sum()),
            ),
            balancer_override=FlakyBalancer(),
            placement=make_placement(comm.topology, 8),
        )
        ctl.rebalance(0, plan, fresh_states(26), iter_time_hint=0.1)
        with pytest.raises(RuntimeError, match="boom"):
            ctl.rebalance(1, plan, states, iter_time_hint=0.1)
        assert ctl.placement.num_stages == 8  # nothing committed
        assert ctl.num_repacks == 0
        d = ctl.rebalance(2, plan, states, iter_time_hint=0.1)  # retry works
        assert d.repacked
        assert ctl.num_repacks == 1

    def test_repack_only_decision_is_not_rebalanced(self, gpt24_cost, comm):
        """Re-pack alone must not masquerade as a balancer move."""

        from repro.core.balancers.base import BalanceResult, LoadBalancer

        class IdentityBalancer(LoadBalancer):
            def rebalance(self, plan, weights, memory_per_layer=None,
                          memory_capacity=None):
                loads = plan.stage_loads(weights)
                return BalanceResult(plan, loads, loads)

        states = fresh_states(26)
        for s in states[1:-1]:
            s.sparsity = 0.95
        plan = PipelinePlan.uniform(26, 8)
        rep = PipelineProfiler(gpt24_cost).profile(plan, states)
        ctl = DynMoController(
            gpt24_cost,
            comm,
            DynMoConfig(
                repack=True,
                repack_target_workers=2,
                memory_capacity_bytes=float(rep.worker_memory.sum()),
            ),
            balancer_override=IdentityBalancer(),
        )
        ctl.rebalance(0, plan, fresh_states(26), iter_time_hint=0.1)
        d = ctl.rebalance(1, plan, states, iter_time_hint=0.1)
        assert d.repacked
        assert not d.rebalanced
        assert d.plan.num_stages < 8
