"""Tests for topology, collectives, memory tracker, job manager."""

import numpy as np
import pytest

from repro.cluster import (
    CommCostModel,
    ElasticJobManager,
    MemoryTracker,
    OutOfMemoryError,
    h100_cluster,
    h100_node,
)
from repro.cluster.topology import IB_NDR200x4, NVLINK4, ClusterTopology, Link


class TestTopology:
    def test_counts(self):
        topo = h100_cluster(3, 4)
        assert topo.num_nodes == 3
        assert topo.num_gpus == 12
        assert topo.gpus_per_node == 4

    def test_node_of(self):
        topo = h100_cluster(2, 4)
        assert topo.node_of(0) == 0
        assert topo.node_of(3) == 0
        assert topo.node_of(4) == 1
        with pytest.raises(ValueError):
            topo.node_of(8)

    def test_link_between(self):
        topo = h100_cluster(2, 4)
        assert topo.link_between(0, 1) is NVLINK4
        assert topo.link_between(3, 4) is IB_NDR200x4
        assert topo.link_between(2, 2).bandwidth_Bps == float("inf")

    def test_link_time(self):
        link = Link("x", latency_s=1e-6, bandwidth_Bps=1e9)
        assert link.time(1e9) == pytest.approx(1.000001)
        with pytest.raises(ValueError):
            link.time(-1)

    def test_empty_cluster_raises(self):
        with pytest.raises(ValueError):
            ClusterTopology(nodes=[])

    def test_nvlink_faster_than_ib(self):
        assert NVLINK4.time(1e9) < IB_NDR200x4.time(1e9)


class TestCollectives:
    def test_p2p_self_zero(self, comm):
        assert comm.p2p_time(1, 1, 1e6) == 0.0

    def test_p2p_intra_faster_than_inter(self, comm):
        assert comm.p2p_time(0, 1, 1e8) < comm.p2p_time(0, 4, 1e8)

    def test_allreduce_zero_cases(self, comm):
        assert comm.allreduce_time([0], 1e6) == 0.0
        assert comm.allreduce_time([0, 1], 0) == 0.0

    def test_allreduce_scales_with_bytes(self, comm):
        t1 = comm.allreduce_time([0, 1, 2, 3], 1e6)
        t2 = comm.allreduce_time([0, 1, 2, 3], 1e8)
        assert t2 > t1

    def test_allreduce_inter_node_slower(self, comm):
        intra = comm.allreduce_time([0, 1, 2, 3], 1e8)
        inter = comm.allreduce_time([0, 1, 4, 5], 1e8)
        assert inter > intra

    def test_gather_scatter_symmetry(self, comm):
        ranks = [0, 1, 2, 3]
        assert comm.gather_time(0, ranks, 1e6) == comm.scatter_time(0, ranks, 1e6)

    def test_all_to_all_grows_with_group(self, comm):
        t4 = comm.all_to_all_time([0, 1, 2, 3], 1e6)
        t8 = comm.all_to_all_time(list(range(8)), 1e6)
        assert t8 > t4

    def test_ring_allreduce_formula(self, small_cluster):
        comm = CommCostModel(small_cluster)
        n, nbytes = 4, 1e8
        link = NVLINK4
        expected = 2 * (n - 1) * link.latency_s + 2 * (n - 1) / n * nbytes / link.bandwidth_Bps
        assert comm.allreduce_time([0, 1, 2, 3], nbytes) == pytest.approx(expected)


class TestMemoryTracker:
    def test_allocate_free(self):
        mt = MemoryTracker(100, 2)
        mt.allocate(0, 60)
        assert mt.usage[0] == 60
        assert mt.headroom(0) == 40
        mt.free(0, 20)
        assert mt.usage[0] == 40
        assert mt.utilization(0) == pytest.approx(0.4)

    def test_oom(self):
        mt = MemoryTracker(100, 1)
        mt.allocate(0, 90)
        with pytest.raises(OutOfMemoryError):
            mt.allocate(0, 20)

    def test_fits(self):
        mt = MemoryTracker(100, 1)
        assert mt.fits(0, 100)
        mt.allocate(0, 50)
        assert not mt.fits(0, 51)

    def test_over_free_raises(self):
        mt = MemoryTracker(100, 1)
        with pytest.raises(ValueError):
            mt.free(0, 1)

    def test_reset(self):
        mt = MemoryTracker(10, 2)
        mt.allocate(1, 5)
        mt.reset()
        assert mt.usage == [0, 0]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MemoryTracker(0, 1)
        with pytest.raises(ValueError):
            MemoryTracker(10, 0)


class TestJobManager:
    def test_request_release_cycle(self):
        jm = ElasticJobManager(total_gpus=16)
        jm.request("a", 8, iteration=0)
        assert jm.free_gpus == 8
        jm.release("a", 2, iteration=100)
        assert jm.free_gpus == 10
        assert jm.claims["a"] == 6
        assert len(jm.events) == 1

    def test_over_request_raises(self):
        jm = ElasticJobManager(total_gpus=4)
        with pytest.raises(RuntimeError):
            jm.request("a", 5)

    def test_over_release_raises(self):
        jm = ElasticJobManager(total_gpus=4)
        jm.request("a", 2)
        with pytest.raises(ValueError):
            jm.release("a", 3, iteration=1)

    def test_average_gpus(self):
        """8 GPUs for 500 iters then 4 for 500 -> average 6."""
        jm = ElasticJobManager(total_gpus=8)
        jm.request("a", 8, iteration=0)
        jm.release("a", 4, iteration=500)
        assert jm.average_gpus("a", 1000) == pytest.approx(6.0)

    def test_average_matches_paper_example(self):
        """Fig. 4: pruning goes 8 -> avg 5.8 over 10k iters (repack
        at 2300/6700/8500 to 6/4/2)."""
        jm = ElasticJobManager(total_gpus=8)
        jm.request("a", 8, iteration=0)
        jm.release("a", 2, iteration=2300)
        jm.release("a", 2, iteration=6700)
        jm.release("a", 2, iteration=8500)
        avg = jm.average_gpus("a", 10_000)
        # 8x2300 + 6x4400 + 4x1800 + 2x1500 = 55000 GPU-iters -> 5.5
        # (the paper reports 5.8 for its measured re-pack points)
        assert avg == pytest.approx(5.5, abs=0.01)

    def test_time_travel_raises(self):
        jm = ElasticJobManager(total_gpus=8)
        jm.request("a", 4, iteration=10)
        with pytest.raises(ValueError):
            jm.release("a", 1, iteration=5)


class TestHeterogeneousTopology:
    """node_of/link_between must respect per-node GPU counts
    (regression: the old `rank // nodes[0].gpus_per_node` mis-mapped
    ranks on uneven clusters)."""

    def test_node_of_uneven_nodes(self):
        from repro.cluster import hetero_cluster

        topo = hetero_cluster([8, 4, 2])
        assert topo.num_gpus == 14
        assert [topo.node_of(r) for r in (0, 7, 8, 11, 12, 13)] == [
            0, 0, 1, 1, 2, 2,
        ]
        with pytest.raises(ValueError):
            topo.node_of(14)

    def test_node_of_small_first_node(self):
        """The old stride rule crashed (IndexError) or mis-mapped when
        node 0 was the smallest."""
        from repro.cluster import hetero_cluster

        topo = hetero_cluster([2, 8])
        assert topo.node_of(1) == 0
        assert topo.node_of(2) == 1
        assert topo.node_of(9) == 1

    def test_link_between_uneven_nodes(self):
        from repro.cluster import hetero_cluster

        topo = hetero_cluster([2, 8])
        assert topo.link_between(2, 9) is NVLINK4  # both on node 1
        assert topo.link_between(1, 2) is IB_NDR200x4  # crosses nodes

    def test_node_ranks_and_gpu_of(self):
        from repro.cluster import GPUSpec, hetero_cluster

        a100 = GPUSpec("A100", memory_bytes=40 * 1024**3, peak_flops=312e12)
        topo = hetero_cluster([2, 3], gpus=[GPUSpec(), a100])
        assert list(topo.node_ranks(1)) == [2, 3, 4]
        assert topo.gpu_of(4).name == "A100"
        assert topo.min_memory_bytes == 40 * 1024**3

    def test_gpus_per_node_undefined_when_uneven(self):
        from repro.cluster import hetero_cluster

        topo = hetero_cluster([8, 4])
        with pytest.raises(ValueError, match="heterogeneous"):
            _ = topo.gpus_per_node
        assert not topo.is_uniform
        assert h100_cluster(2, 4).is_uniform


class TestParseCluster:
    def test_simple_and_mixed(self):
        from repro.cluster import parse_cluster

        topo = parse_cluster("2x8+2x4")
        assert [n.gpus_per_node for n in topo.nodes] == [8, 8, 4, 4]
        assert topo.num_gpus == 24

    def test_gpu_models(self):
        from repro.cluster import parse_cluster

        topo = parse_cluster("1x8:h100+2x4:a100")
        assert topo.nodes[0].gpu.name == "H100-SXM5"
        assert topo.nodes[1].gpu.name == "A100-SXM4"
        assert topo.min_memory_bytes == 40 * 1024**3

    def test_bad_specs_raise(self):
        from repro.cluster import parse_cluster

        for bad in ("", "8", "2x", "x4", "2x8:tpu", "0x4", "2x-1"):
            with pytest.raises(ValueError):
                parse_cluster(bad)

    def test_degenerate_specs_name_the_bad_segment(self):
        """Satellite bugfix: zero/negative counts, empty '+' segments
        and unknown models raise ValueErrors naming the offender, never
        a bare KeyError/IndexError or a nonsense topology."""
        from repro.cluster import parse_cluster

        with pytest.raises(ValueError, match=r"'0x8'.*node count"):
            parse_cluster("0x8")
        with pytest.raises(ValueError, match=r"'2x0'.*GPUs per node"):
            parse_cluster("2x0")
        with pytest.raises(ValueError, match=r"'-1x8'.*node count"):
            parse_cluster("-1x8")
        with pytest.raises(ValueError, match="empty group in cluster spec"):
            parse_cluster("2x4++2x4")
        with pytest.raises(ValueError, match="empty group in cluster spec"):
            parse_cluster("2x4+")
        with pytest.raises(ValueError, match=r"unknown GPU model 'tpu' in cluster group '2x4:tpu'"):
            parse_cluster("2x4:tpu")
        # whitespace-only and separator-only specs fail cleanly too
        for bad in ("  ", "+", " + "):
            with pytest.raises(ValueError, match="cluster"):
                parse_cluster(bad)
