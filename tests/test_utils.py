"""Tests for repro.utils: rng, timers, validation."""

import time

import numpy as np
import pytest

from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.timers import Timer, TimerSet
from repro.utils.validation import check_nonneg, check_positive, check_prob


class TestRng:
    def test_same_seed_same_stream(self):
        a, b = new_rng(42), new_rng(42)
        assert np.array_equal(a.random(10), b.random(10))

    def test_different_seed_different_stream(self):
        assert not np.array_equal(new_rng(1).random(10), new_rng(2).random(10))

    def test_generator_passthrough(self):
        g = np.random.default_rng(7)
        assert new_rng(g) is g

    def test_none_defaults_to_zero(self):
        assert np.array_equal(new_rng(None).random(5), new_rng(0).random(5))

    def test_spawn_rngs_independent(self):
        streams = spawn_rngs(123, 4)
        assert len(streams) == 4
        draws = [s.random(8) for s in streams]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_spawn_rngs_reproducible(self):
        a = spawn_rngs(5, 3)
        b = spawn_rngs(5, 3)
        for x, y in zip(a, b):
            assert np.array_equal(x.random(4), y.random(4))

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestTimer:
    def test_accumulates(self):
        t = Timer("x")
        with t:
            time.sleep(0.01)
        assert t.elapsed_s >= 0.009
        assert t.count == 1

    def test_double_start_raises(self):
        t = Timer("x")
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer("x").stop()

    def test_reset(self):
        t = Timer("x")
        with t:
            pass
        t.reset()
        assert t.elapsed_s == 0.0 and t.count == 0

    def test_timerset_creates_on_demand(self):
        ts = TimerSet()
        with ts("a"):
            pass
        with ts("b"):
            pass
        assert ts.names() == ["a", "b"]
        assert ts.total() >= 0
        assert ts.elapsed("missing") == 0.0

    def test_timerset_summary(self):
        ts = TimerSet()
        with ts("a"):
            pass
        assert set(ts.summary()) == {"a"}


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -1)

    def test_check_nonneg(self):
        check_nonneg("x", 0)
        with pytest.raises(ValueError):
            check_nonneg("x", -0.1)

    def test_check_prob(self):
        check_prob("x", 0.0)
        check_prob("x", 1.0)
        with pytest.raises(ValueError):
            check_prob("x", 1.01)
        with pytest.raises(ValueError):
            check_prob("x", -0.01)
