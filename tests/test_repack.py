"""Tests for Algorithm 2 (first-fit re-packing) and repack_plan."""

import numpy as np
import pytest

from repro.core.repack import RepackResult, first_fit_repack, repack_plan
from repro.pipeline import PipelinePlan


class TestFirstFitRepack:
    def test_merges_when_memory_allows(self):
        res = first_fit_repack([10.0, 10.0, 10.0, 10.0], [2, 2, 2, 2], max_mem=25.0)
        assert res.num_active < 4
        assert res.transfers  # layers actually moved

    def test_no_merge_when_memory_tight(self):
        res = first_fit_repack([20.0, 20.0], [3, 3], max_mem=25.0)
        assert res.num_active == 2
        assert res.transfers == []

    def test_respects_target_floor(self):
        res = first_fit_repack([1.0] * 8, [1] * 8, max_mem=100.0, target_num_workers=4)
        assert res.num_active == 4

    def test_memory_conserved(self):
        mem = [5.0, 7.0, 3.0, 4.0]
        res = first_fit_repack(mem, [1, 1, 1, 1], max_mem=100.0, target_num_workers=1)
        assert sum(res.mem_usage) == pytest.approx(sum(mem))
        active_mem = [m for m, a in zip(res.mem_usage, res.active_workers) if a]
        assert all(m <= 100.0 for m in active_mem)

    def test_transfer_list_structure(self):
        res = first_fit_repack([1.0, 1.0], [3, 2], max_mem=10.0, target_num_workers=1)
        # src 0 merged into dst 1: 3 layer transfers
        assert res.active_workers == [0, 1]
        assert [(s, d) for s, d, _ in res.transfers] == [(0, 1)] * 3
        assert [l for _, _, l in res.transfers] == [0, 1, 2]

    def test_released_property(self):
        res = first_fit_repack([1.0, 1.0, 1.0], [1, 1, 1], max_mem=10.0)
        assert set(res.released) == {i for i, a in enumerate(res.active_workers) if not a}

    def test_greedy_first_fit_order(self):
        """Algorithm 2 scans (src, dst) pairs in index order: worker 0
        merges into worker 1 first."""
        res = first_fit_repack([2.0, 2.0, 2.0], [1, 1, 1], max_mem=5.0, target_num_workers=1)
        assert res.active_workers[0] == 0
        assert res.mem_usage[1] == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            first_fit_repack([1.0], [1, 2], max_mem=10)
        with pytest.raises(ValueError):
            first_fit_repack([1.0], [1], max_mem=0)
        with pytest.raises(ValueError):
            first_fit_repack([1.0], [1], max_mem=1, target_num_workers=0)


class TestRepackPlan:
    def test_shrinks_stage_count(self):
        plan = PipelinePlan.uniform(16, 8)
        mem = np.full(8, 10.0)
        new_plan, res = repack_plan(plan, mem, max_mem=25.0, target_num_workers=2)
        assert new_plan.num_stages == res.num_active
        assert new_plan.num_stages < 8
        assert new_plan.num_layers == 16

    def test_no_change_when_tight(self):
        plan = PipelinePlan.uniform(16, 4)
        mem = np.full(4, 30.0)
        new_plan, res = repack_plan(plan, mem, max_mem=50.0)
        assert new_plan == plan
        assert res.num_active == 4

    def test_wrong_memory_length_raises(self):
        plan = PipelinePlan.uniform(8, 4)
        with pytest.raises(ValueError):
            repack_plan(plan, np.ones(3), max_mem=10.0)

    def test_target_of_one_fully_packs(self):
        plan = PipelinePlan.uniform(8, 4)
        new_plan, res = repack_plan(plan, np.full(4, 1.0), max_mem=100.0, target_num_workers=1)
        assert new_plan.num_stages == 1
