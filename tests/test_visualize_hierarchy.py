"""Tests for the Gantt visualizer and hierarchical collectives."""

import numpy as np
import pytest

from repro.cluster import CommCostModel, h100_cluster
from repro.cluster.hierarchy import (
    flat_vs_hierarchical,
    hierarchical_allreduce_time,
    pipeline_comm_cost,
    topology_aware_stage_ranks,
)
from repro.model.cost import fresh_states
from repro.pipeline import PipelineEngine, PipelinePlan
from repro.pipeline.visualize import bubble_summary, render_gantt


class TestGantt:
    def _result(self, cost, states):
        eng = PipelineEngine(cost, None, schedule="1f1b", num_micro=4, record_timeline=True)
        return eng.run_iteration(PipelinePlan.uniform(26, 4), states)

    def test_render_shape(self, gpt24_cost, gpt24_states):
        res = self._result(gpt24_cost, gpt24_states)
        chart = render_gantt(res, width=40)
        assert len(chart.grid) == 4
        assert all(len(r) == 40 for r in chart.grid)
        assert set("".join(chart.grid)) <= {"F", "B", "W", "."}

    def test_first_worker_starts_busy(self, gpt24_cost, gpt24_states):
        res = self._result(gpt24_cost, gpt24_states)
        chart = render_gantt(res, width=40)
        assert chart.grid[0][0] == "F"
        # deeper stages start idle (warm-up)
        assert chart.grid[3][0] == "."

    def test_occupancy_tracks_busy(self, gpt24_cost, gpt24_states):
        res = self._result(gpt24_cost, gpt24_states)
        chart = render_gantt(res, width=200)
        for wkr in range(4):
            measured = res.busy[wkr] / res.makespan
            assert chart.occupancy(wkr) == pytest.approx(measured, abs=0.08)

    def test_requires_timeline(self, gpt24_cost, gpt24_states):
        eng = PipelineEngine(gpt24_cost, None, num_micro=2)
        res = eng.run_iteration(PipelinePlan.uniform(26, 2), gpt24_states)
        with pytest.raises(ValueError):
            render_gantt(res)

    def test_invalid_width(self, gpt24_cost, gpt24_states):
        res = self._result(gpt24_cost, gpt24_states)
        with pytest.raises(ValueError):
            render_gantt(res, width=0)

    def test_bubble_summary(self, gpt24_cost, gpt24_states):
        res = self._result(gpt24_cost, gpt24_states)
        rows = bubble_summary(res)
        assert len(rows) == 4
        for row in rows:
            assert row["busy_ms"] > 0
            assert 0 <= row["idle_frac"] <= 1


class TestHierarchicalAllreduce:
    def test_beats_flat_across_nodes(self):
        topo = h100_cluster(8, 4)
        comm = CommCostModel(topo)
        ranks = list(range(32))
        row = flat_vs_hierarchical(comm, ranks, 1e9)
        assert row["hierarchical_s"] < row["flat_s"]
        assert row["speedup"] > 1.0

    def test_single_node_falls_back_to_flat(self, small_cluster):
        comm = CommCostModel(small_cluster)
        ranks = [0, 1, 2, 3]
        assert hierarchical_allreduce_time(comm, ranks, 1e8) == pytest.approx(
            comm.allreduce_time(ranks, 1e8)
        )

    def test_zero_cases(self, comm):
        assert hierarchical_allreduce_time(comm, [0], 1e8) == 0.0
        assert hierarchical_allreduce_time(comm, [0, 4], 0.0) == 0.0


class TestTopologyAwarePlacement:
    def test_pack_keeps_neighbors_on_node(self, small_cluster):
        ranks = topology_aware_stage_ranks(small_cluster, 8, "pack")
        assert ranks == list(range(8))

    def test_spread_round_robins(self, small_cluster):
        ranks = topology_aware_stage_ranks(small_cluster, 4, "spread")
        nodes = [small_cluster.node_of(r) for r in ranks]
        assert nodes == [0, 1, 0, 1]

    def test_pack_cheaper_pipeline_traffic(self, small_cluster):
        comm = CommCostModel(small_cluster)
        pack = topology_aware_stage_ranks(small_cluster, 8, "pack")
        spread = topology_aware_stage_ranks(small_cluster, 8, "spread")
        assert pipeline_comm_cost(comm, pack, 1e7) < pipeline_comm_cost(
            comm, spread, 1e7
        )

    def test_too_many_stages_raises(self, small_cluster):
        with pytest.raises(ValueError):
            topology_aware_stage_ranks(small_cluster, 100)

    def test_unknown_policy_raises(self, small_cluster):
        with pytest.raises(ValueError):
            topology_aware_stage_ranks(small_cluster, 4, "random")
