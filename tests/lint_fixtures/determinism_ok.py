"""Determinism-checker negatives: nothing here may be flagged."""

import hashlib
import random
import time

import numpy as np


def draw(seed):
    return random.Random(seed).random()  # seeded instance, not global


def make_rng(seed):
    return np.random.default_rng(seed)  # explicitly seeded


def measure():
    t0 = time.perf_counter()  # duration measurement is fine
    time.monotonic()
    return time.perf_counter() - t0


def iterate(s):
    out = []
    for item in sorted({1, 2, 3}):  # sorted() pins the order
        out.append(item)
    total = sum(x for x in set(s))  # order-free consumer
    low = min(x for x in set(s))
    return out, total, low, {x * 2 for x in set(s)}  # set-from-set


def key(spec):
    return hashlib.blake2b(repr(spec).encode()).hexdigest()
