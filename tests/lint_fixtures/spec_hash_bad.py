"""Spec-hash-checker positives."""

import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class ForgotToHash:
    """A RunSpec-like spec whose newest field never reaches the hash."""

    layers: int
    stages: int
    new_knob: float  # added later, never folded into spec_hash

    @property
    def spec_hash(self) -> str:
        payload = {"layers": self.layers, "stages": self.stages}  # RPR201
        raw = json.dumps(payload, sort_keys=True)
        return hashlib.blake2b(raw.encode(), digest_size=8).hexdigest()


@dataclass(frozen=True)
class StaleKey:
    layers: int

    @property
    def spec_hash(self) -> str:
        # RPR201 (layers missing) + RPR202 ('removed_field' is stale)
        payload = {"removed_field": 0}
        return hashlib.blake2b(json.dumps(payload).encode()).hexdigest()


@dataclass
class LossyRoundTrip:
    a: int
    b: int
    c: int

    def to_dict(self):
        return {"a": self.a, "b": self.b}  # RPR203: drops c, has from_dict

    @classmethod
    def from_dict(cls, d):
        return cls(a=d["a"], b=d["b"], c=0)


@dataclass
class Unverifiable:
    a: int

    def content_hash(self) -> str:
        payload = _build_payload(self)  # RPR204: opaque helper
        return hashlib.blake2b(repr(payload).encode()).hexdigest()


def _build_payload(obj):
    return {"a": obj.a}
