"""Concurrency-checker positives."""

import threading


class RacyWorld:
    """Spawns threads, mutates shared state with no lock."""

    def __init__(self):
        self.inbox = {}
        self.count = 0
        self._lock = threading.Lock()

    def start(self):
        t = threading.Thread(target=self._run)
        t.start()

    def _run(self):
        self.count += 1  # RPR301: augmented assignment outside lock
        self.inbox["msg"] = 1  # RPR301: subscript store outside lock
        self.pending = []  # RPR301: attribute assignment outside lock
        self.pending.append(0)  # RPR301: mutating call outside lock


class LeakyLock:
    def __init__(self):
        self._lock = threading.Lock()
        self.state = 0

    def poke(self):
        self._lock.acquire()  # RPR302: no try/finally release
        self.state += 1
        self._lock.release()
