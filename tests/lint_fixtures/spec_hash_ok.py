"""Spec-hash-checker negatives: complete payloads, one-way exports."""

import hashlib
import json
from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class CompleteByConstruction:
    layers: int
    stages: int
    new_knob: float

    def to_dict(self):
        return asdict(self)  # covers every field, present and future

    @property
    def spec_hash(self) -> str:
        payload = dict(self.to_dict(), _schema=1)  # meta keys are fine
        raw = json.dumps(payload, sort_keys=True)
        return hashlib.blake2b(raw.encode(), digest_size=8).hexdigest()


@dataclass(frozen=True)
class ExplicitButComplete:
    a: int
    b: int

    def to_dict(self):
        return {"a": self.a, "b": self.b}

    @classmethod
    def from_dict(cls, d):
        return cls(**d)

    @property
    def spec_hash(self) -> str:
        payload = self.to_dict()  # chains through explicit to_dict coverage
        return hashlib.blake2b(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()


@dataclass
class OneWaySummary:
    """No from_dict: a summary export may rename and drop fields."""

    records: list
    stats: dict

    def to_dict(self):
        return {"groups": self.stats}  # intentional: records dropped


@dataclass
class ConditionalKeys:
    kind: str
    duration: float

    def to_dict(self):
        d = {"kind": self.kind}
        if self.kind == "straggler":
            d["duration"] = self.duration  # conditional stores count
        return d

    @classmethod
    def from_dict(cls, d):
        return cls(kind=d["kind"], duration=d.get("duration", 0.0))
