"""Concurrency-checker negatives."""

import threading


class GuardedWorld:
    """Same shape as RacyWorld but every mutation is lock-guarded."""

    def __init__(self):
        self.inbox = {}  # __init__ runs before the object is shared
        self.count = 0
        self._lock = threading.Lock()

    def start(self):
        t = threading.Thread(target=self._run)
        t.start()

    def _run(self):
        with self._lock:
            self.count += 1
            self.inbox["msg"] = 1
            self.inbox.setdefault("other", []).append(0)


class CarefulAcquire:
    def __init__(self):
        self._lock = threading.Lock()
        self.state = 0

    def poke(self):
        self._lock.acquire()
        try:
            self.state += 1
        finally:
            self._lock.release()


class PlainDataHolder:
    """No threads anywhere: free to mutate without locks."""

    def __init__(self):
        self.items = []

    def add(self, x):
        self.items.append(x)
        self.total = sum(self.items)
