"""CI self-test: `repro lint` on this file MUST exit nonzero.

One violation per checker family; if any checker regresses to silence,
the CI lint self-test step fails the build.
"""

import threading
import time
from dataclasses import dataclass

import numpy as np


def unseeded():
    return np.random.default_rng()  # RPR101


def stamped():
    return time.time()  # RPR102


@dataclass
class Spec:
    a: int
    b: int

    def spec_hash(self):
        return hash((self.a,))  # RPR104 + RPR204 (payload unverifiable)

    def content_hash_payload(self):
        return {"a": self.a}  # RPR201: b missing


class Racy:
    def run(self):
        threading.Thread(target=self.step).start()

    def step(self):
        self.counter = 1  # RPR301


__all__ = ["unseeded", "stamped", "Spec", "Racy", "does_not_exist"]  # RPR401
