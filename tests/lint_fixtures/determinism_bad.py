"""Determinism-checker positives: every statement here must be flagged."""

import random
import time
from datetime import datetime

import numpy as np


def draw():
    return random.random()  # RPR101: process-global Mersenne Twister


def draw_np():
    return np.random.uniform()  # RPR101: numpy global state


def make_rng():
    return np.random.default_rng()  # RPR101: unseeded


def stamp():
    return time.time()  # RPR102: wall clock


def stamp2():
    return datetime.now()  # RPR102: wall clock


def iterate(s):
    out = []
    for item in {1, 2, 3}:  # RPR103: set iteration order
        out.append(item)
    out.extend(x for x in set(s))  # RPR103: comprehension over a set
    return out


def key(spec):
    return hash(spec)  # RPR104: salted builtin hash
