def present():
    return "present"
