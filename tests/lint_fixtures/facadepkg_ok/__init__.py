"""Healthy facade: everything resolves, shims warn with stacklevel."""

import warnings

from .mod import present

__all__ = ["present", "old_entry_point"]


def old_entry_point():
    """Deprecated: use present() instead."""
    warnings.warn(
        "old_entry_point() is deprecated; use present()",
        DeprecationWarning,
        stacklevel=2,
    )
    return present()
