"""Implementation module for the facade fixture."""


def present():
    return "present"


# 'vanished' was removed in a refactor; __init__.py still re-exports it.
