"""Facade-checker fixture package: every rot mode in one facade."""

import warnings

from .mod import present  # resolves: clean
from .mod import vanished  # RPR402: mod.py no longer defines 'vanished'

__all__ = [
    "present",
    "vanished",
    "never_imported",  # RPR401: named but never bound here
    "old_entry_point",
]


def old_entry_point():
    """Deprecated: use present() instead."""
    # RPR403: documented deprecated, never warns
    return present()


def older_entry_point():
    """Deprecated: use present() instead."""
    warnings.warn(
        "older_entry_point() is deprecated; use present()",
        DeprecationWarning,  # RPR404: no stacklevel
    )
    return present()
