"""Suppression forms that must lint clean (2 suppressions applied)."""

import time


def in_process_tag(obj):
    # same-line suppression with justification
    return hash(obj)  # repro: ignore[RPR104] — never cached or exported


def wall_clock_log_line():
    # repro: ignore[RPR102] — log decoration only, not a result path
    return time.time()
