"""Tests for the synthetic corpus generators."""

import numpy as np
import pytest

from repro.nn import GPT, Adam, softmax_cross_entropy
from repro.nn.data import MarkovCorpus, ZipfCorpus, lm_batches, zipf_distribution


class TestZipf:
    def test_distribution_normalised_and_decreasing(self):
        p = zipf_distribution(100)
        assert p.sum() == pytest.approx(1.0)
        assert (np.diff(p) <= 0).all()

    def test_exponent_zero_uniform(self):
        p = zipf_distribution(10, exponent=0.0)
        assert np.allclose(p, 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_distribution(0)
        with pytest.raises(ValueError):
            zipf_distribution(10, exponent=-1)

    def test_corpus_shape_and_range(self):
        c = ZipfCorpus(vocab_size=50, seed=0)
        ids = c.sample(4, 16)
        assert ids.shape == (4, 16)
        assert ids.min() >= 0 and ids.max() < 50

    def test_corpus_skew(self):
        """Low-rank tokens appear much more often than high-rank ones."""
        c = ZipfCorpus(vocab_size=100, seed=0)
        ids = c.sample(64, 64)
        counts = np.bincount(ids.reshape(-1), minlength=100)
        assert counts[:10].sum() > counts[50:].sum()

    def test_reproducible(self):
        a = ZipfCorpus(30, seed=5).sample(2, 8)
        b = ZipfCorpus(30, seed=5).sample(2, 8)
        assert np.array_equal(a, b)


class TestMarkov:
    def test_transition_stochastic(self):
        c = MarkovCorpus(vocab_size=20, seed=0)
        assert np.allclose(c.transition.sum(axis=1), 1.0)
        assert (c.transition >= 0).all()

    def test_locality_band_preferred(self):
        c = MarkovCorpus(vocab_size=40, band=4, locality=0.9, seed=0)
        # successor within the band far more likely than outside
        row = c.transition[0]
        assert row[1:5].sum() > 0.8

    def test_sample_shape(self):
        ids = MarkovCorpus(vocab_size=16, seed=1).sample(3, 10)
        assert ids.shape == (3, 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovCorpus(vocab_size=8, locality=1.5)
        with pytest.raises(ValueError):
            MarkovCorpus(vocab_size=8, band=0)

    def test_markov_structure_learnable(self):
        """A tiny GPT on Markov data beats the unigram entropy floor —
        i.e. the corpus carries real sequential signal."""
        corpus = MarkovCorpus(vocab_size=32, band=2, locality=0.95, seed=0)
        gpt = GPT(vocab_size=32, hidden=32, num_layers=2, num_heads=2, max_seq=16, seed=0)
        opt = Adam(gpt.parameters(), lr=5e-3)
        losses = []
        for x, y in lm_batches(corpus, batch=8, seq_len=12, num_batches=40):
            logits = gpt(x)
            loss, d = softmax_cross_entropy(logits, y)
            losses.append(loss)
            gpt.zero_grad()
            gpt.backward(d)
            opt.step()
        # locality 0.95/band 2 has conditional entropy ~ 0.5 nats;
        # unigram entropy is ~ ln(32) ~ 3.4 — training must close most
        # of that gap from the initial uniform ~3.4
        assert losses[-1] < 2.0
        assert losses[-1] < losses[0] * 0.6


class TestBatches:
    def test_next_token_alignment(self):
        c = ZipfCorpus(vocab_size=10, seed=0)
        for x, y in lm_batches(c, batch=2, seq_len=5, num_batches=3):
            assert x.shape == y.shape == (2, 5)

    def test_validation(self):
        c = ZipfCorpus(vocab_size=10)
        with pytest.raises(ValueError):
            list(lm_batches(c, 1, 4, 0))
