"""Distributed sweep tests: shard plans, leases, work-stealing, merge.

The multi-process tests drive real worker processes against one shard
directory; fault injection (host death, heartbeat stalls, torn
journals) goes through :mod:`repro.orchestrator.faults`, so every
chaos scenario is deterministic in *which* fault fires — only the
interleaving of healthy workers is left to the scheduler, and the
assertions (exactly-once execution, steal-exactly-once, bit-identical
merge) are invariant to it.
"""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.distrib import (
    LeaseManager,
    PlanError,
    PlanMismatch,
    ShardPlan,
    ShardWorker,
    TieredResultCache,
    comparable_payload,
    merge_shard_dir,
    safe_name,
    shard_dir_status,
)
from repro.distrib.layout import ShardDirLayout
from repro.orchestrator import (
    ExecutionPolicy,
    FaultPlan,
    JournalSchemaError,
    ResultCache,
    RunSpec,
    SweepJournal,
    SweepRunner,
    clear_quarantine,
    execute_spec,
    iter_journal_entries,
    quarantine_spec,
    quarantined,
)
from repro.orchestrator import faults
from repro.orchestrator.journal import JOURNAL_SCHEMA_VERSION
from repro.orchestrator.results import RECORD_SCHEMA_VERSION
from repro.orchestrator.spec import SPEC_SCHEMA_VERSION


def tiny(**kwargs) -> RunSpec:
    base = dict(
        scenario="pruning", mode="dynmo-partition", num_layers=12,
        pp_stages=4, dp_ways=1, iterations=4,
    )
    base.update(kwargs)
    return RunSpec(**base)


def grid(n: int) -> list[RunSpec]:
    return [tiny(seed=s) for s in range(n)]


@pytest.fixture(autouse=True)
def _clean_fault_state():
    clear_quarantine()
    faults.uninstall()
    yield
    clear_quarantine()
    faults.uninstall()


# -- shard plans -------------------------------------------------------------


class TestShardPlan:
    def test_contiguous_split_never_empty(self):
        plan = ShardPlan.build(grid(5), 3)
        assert [len(s.specs) for s in plan.shards] == [2, 2, 1]
        assert list(plan.specs) == grid(5)
        plan = ShardPlan.build(grid(3), 8)
        assert len(plan.shards) == 3  # never an empty shard

    def test_shard_ids_are_content_hashes(self):
        a = ShardPlan.build(grid(4), 2)
        b = ShardPlan.build(grid(4), 2)
        assert a.plan_id == b.plan_id
        assert [s.shard_id for s in a.shards] == [s.shard_id for s in b.shards]
        c = ShardPlan.build(grid(5), 2)  # different work, different ids
        assert c.plan_id != a.plan_id

    def test_round_trip(self):
        plan = ShardPlan.build(grid(4), 2)
        again = ShardPlan.from_dict(plan.to_dict())
        assert again.plan_id == plan.plan_id
        assert again.specs == plan.specs

    def test_tampered_plan_fails_content_check(self):
        payload = ShardPlan.build(grid(4), 2).to_dict()
        payload["shards"][0]["specs"][0]["seed"] = 999
        with pytest.raises(PlanError, match="content check"):
            ShardPlan.from_dict(payload)

    def test_publish_is_idempotent_but_refuses_a_different_plan(self, tmp_path):
        sd = tmp_path / "shard"
        plan = ShardPlan.build(grid(4), 2)
        plan.publish(sd)
        plan.publish(sd)  # same plan: no-op
        assert ShardPlan.load(sd).plan_id == plan.plan_id
        with pytest.raises(PlanMismatch):
            ShardPlan.build(grid(5), 2).publish(sd)

    def test_load_missing_plan_is_a_clear_error(self, tmp_path):
        with pytest.raises(PlanError, match="repro shard plan"):
            ShardPlan.load(tmp_path / "nowhere")

    def test_validation(self):
        with pytest.raises(PlanError):
            ShardPlan.build(grid(3), 0)
        with pytest.raises(PlanError):
            ShardPlan.build([], 2)

    def test_safe_name(self):
        assert safe_name("host-1.local-99") == "host-1.local-99"
        assert safe_name("we/ird:id") == "we-ird-id"
        assert safe_name("///") == "worker"


# -- leases ------------------------------------------------------------------


class TestLeases:
    def test_claim_is_exclusive(self, tmp_path):
        a = LeaseManager(tmp_path, "a", ttl_s=10.0)
        b = LeaseManager(tmp_path, "b", ttl_s=10.0)
        assert a.try_claim("s0") is not None
        assert b.try_claim("s0") is None
        assert a.read_lease("s0").worker == "a"
        a.release("s0")
        assert b.try_claim("s0") is not None

    def test_staleness_follows_heartbeats(self, tmp_path):
        now = [100.0]
        mgr = LeaseManager(tmp_path, "a", ttl_s=5.0, clock=lambda: now[0])
        mgr.try_claim("s0")
        assert not mgr.is_stale("s0")
        now[0] = 104.0
        assert not mgr.is_stale("s0")
        mgr.renew("s0")  # fresh heartbeat at t=104
        now[0] = 108.0
        assert not mgr.is_stale("s0")  # age 4 < ttl 5
        now[0] = 110.0
        assert mgr.is_stale("s0")  # age 6 > ttl 5
        assert mgr.heartbeat_age_s("s0") == pytest.approx(6.0)

    def test_no_lease_is_not_stale(self, tmp_path):
        mgr = LeaseManager(tmp_path, "a", ttl_s=1.0)
        assert not mgr.is_stale("s0")
        assert mgr.heartbeat_age_s("s0") is None

    def test_steal_requires_staleness(self, tmp_path):
        now = [0.0]
        a = LeaseManager(tmp_path, "a", ttl_s=5.0, clock=lambda: now[0])
        b = LeaseManager(tmp_path, "b", ttl_s=5.0, clock=lambda: now[0])
        a.try_claim("s0")
        assert b.try_steal("s0") is None  # heartbeat still fresh

    def test_expired_lease_is_stolen_exactly_once(self, tmp_path):
        now = [0.0]
        dead = LeaseManager(tmp_path, "dead", ttl_s=1.0, clock=lambda: now[0])
        dead.try_claim("s0")
        now[0] = 100.0  # heartbeat is ancient
        b = LeaseManager(tmp_path, "b", ttl_s=1.0, clock=lambda: now[0])
        c = LeaseManager(tmp_path, "c", ttl_s=1.0, clock=lambda: now[0])
        stolen = [m.try_steal("s0") for m in (b, c)]
        winners = [lease for lease in stolen if lease is not None]
        assert len(winners) == 1
        assert winners[0].generation == 1
        assert winners[0].stolen_from == "dead"
        assert len(b.tombstones("s0")) == 1  # audit trail of the steal

    def test_concurrent_steal_race_single_winner(self, tmp_path):
        now = [0.0]
        dead = LeaseManager(tmp_path, "dead", ttl_s=1.0, clock=lambda: now[0])
        dead.try_claim("s0")
        now[0] = 100.0
        managers = [
            LeaseManager(tmp_path, f"w{i}", ttl_s=1.0, clock=lambda: now[0])
            for i in range(8)
        ]
        results = [None] * len(managers)
        barrier = threading.Barrier(len(managers))

        def steal(i):
            barrier.wait()
            results[i] = managers[i].try_steal("s0")

        threads = [
            threading.Thread(target=steal, args=(i,))
            for i in range(len(managers))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        winners = [lease for lease in results if lease is not None]
        assert len(winners) == 1
        assert len(managers[0].tombstones("s0")) == 1

    def test_heartbeat_stall_fault_makes_lease_stealable(self, tmp_path):
        now = [0.0]
        mgr = LeaseManager(tmp_path, "a", ttl_s=5.0, clock=lambda: now[0])
        mgr.try_claim("s0")
        faults.install(FaultPlan(stall_heartbeats_after=0))
        assert not mgr.renew("s0")  # renewal suppressed
        now[0] = 100.0
        assert mgr.is_stale("s0")  # alive but wedged == dead, externally
        other = LeaseManager(tmp_path, "b", ttl_s=5.0, clock=lambda: now[0])
        assert other.try_steal("s0") is not None

    def test_ttl_validation(self, tmp_path):
        with pytest.raises(ValueError):
            LeaseManager(tmp_path, "a", ttl_s=0.0)


# -- two-tier cache ----------------------------------------------------------


class TestTieredCache:
    def test_put_lands_in_both_tiers_and_get_promotes(self, tmp_path):
        cache = TieredResultCache.at(tmp_path / "local", tmp_path / "shared")
        spec = tiny()
        record = execute_spec(spec)
        cache.put(record)
        assert cache.local.get(spec) is not None
        assert cache.shared.get(spec) is not None
        # a fresh local tier (new host) hits shared and promotes
        cache2 = TieredResultCache.at(tmp_path / "local2", tmp_path / "shared")
        assert cache2.get(spec) is not None
        assert cache2.local.get(spec) is not None  # promoted

    def test_corrupt_shared_entry_degrades_to_miss(self, tmp_path):
        cache = TieredResultCache.at(tmp_path / "local", tmp_path / "shared")
        spec = tiny()
        cache.shared.put(execute_spec(spec))
        entry = tmp_path / "shared" / f"{spec.spec_hash}.json"
        faults.corrupt_file(entry)
        assert cache.get(spec) is None  # detected, not served
        assert not entry.exists()  # quarantined aside in the shared dir
        assert list((tmp_path / "shared").glob("*.corrupt"))

    def test_shared_write_failure_degrades_not_fatal(self, tmp_path, monkeypatch):
        from repro.orchestrator.retry import RetryPolicy

        cache = TieredResultCache.at(
            tmp_path / "local", tmp_path / "shared",
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
        )

        def broken_put(record):
            raise OSError("shared filesystem went away")

        monkeypatch.setattr(cache.shared, "put", broken_put)
        spec = tiny()
        cache.put(execute_spec(spec))  # must not raise
        assert cache.local.get(spec) is not None


# -- single-worker end to end ------------------------------------------------


class TestSingleWorker:
    def test_worker_plus_merge_matches_single_host_sweep(self, tmp_path):
        specs = grid(5)
        sd = tmp_path / "shard"
        ShardPlan.build(specs, 2).publish(sd)
        report = ShardWorker(sd, worker="w1").work()
        assert sorted(report.shards_done) == sorted(
            s.shard_id for s in ShardPlan.load(sd).shards
        )
        merged = merge_shard_dir(sd)
        assert merged.complete and not merged.conflicts
        single = SweepRunner().run(specs)
        assert [comparable_payload(r) for r in merged.records] == [
            comparable_payload(r) for r in single
        ]

    def test_second_worker_finds_nothing_to_do(self, tmp_path):
        sd = tmp_path / "shard"
        ShardPlan.build(grid(3), 2).publish(sd)
        ShardWorker(sd, worker="w1").work()
        report = ShardWorker(sd, worker="w2").work()
        assert report.shards_done == [] and report.records == 0

    def test_status_reflects_lease_lifecycle(self, tmp_path):
        sd = tmp_path / "shard"
        plan = ShardPlan.build(grid(4), 2)
        layout = plan.publish(sd)
        status = shard_dir_status(sd)
        assert status["counts"] == {
            "done": 0, "leased": 0, "stale": 0, "unclaimed": 2
        }
        mgr = LeaseManager(layout.leases_dir, "w1", ttl_s=5.0)
        mgr.try_claim(plan.shards[0].shard_id)
        status = shard_dir_status(sd)
        assert status["counts"]["leased"] == 1
        # heartbeats use wall time; fake a dead worker by backdating
        beat = mgr.heartbeat_path(plan.shards[0].shard_id)
        payload = json.loads(beat.read_text())
        payload["at"] -= 3600.0
        beat.write_text(json.dumps(payload))
        status = shard_dir_status(sd)
        assert status["counts"]["stale"] == 1

    def test_poison_markers_propagate_between_workers(self, tmp_path):
        sd = tmp_path / "shard"
        specs = grid(3)
        ShardPlan.build(specs, 1).publish(sd)
        poison = specs[1].spec_hash
        quarantine_spec(poison, "killed a worker on host A")
        ShardWorker(sd, worker="w1").work()
        layout = ShardDirLayout(sd)
        assert layout.poison_path(poison).exists()  # published
        clear_quarantine()
        worker = ShardWorker(sd, worker="w2")
        worker._load_poison()
        assert quarantined(poison) == "killed a worker on host A"


# -- torn journals and backfill ----------------------------------------------


class TestTornJournal:
    def test_merge_backfills_torn_tail_from_shared_cache(self, tmp_path):
        specs = grid(3)
        sd = tmp_path / "shard"
        ShardPlan.build(specs, 1).publish(sd)
        # tear the 3rd (last) journal append mid-line: the record is
        # lost from the journal but its cache write already landed
        faults.install(FaultPlan(tear_journal_appends=(3,), tear_bytes=9))
        ShardWorker(sd, worker="w1").work()
        faults.uninstall()
        merged = merge_shard_dir(sd)
        assert merged.complete
        assert merged.backfilled == [specs[2].spec_hash]
        single = SweepRunner().run(specs)
        merged_cmp = [comparable_payload(r) for r in merged.records]
        assert merged_cmp == [comparable_payload(r) for r in single]

    def test_mismatched_schema_journal_is_skipped_not_merged(self, tmp_path):
        specs = grid(2)
        sd = tmp_path / "shard"
        ShardPlan.build(specs, 1).publish(sd)
        ShardWorker(sd, worker="w1").work()
        layout = ShardDirLayout(sd)
        [journal] = sorted(layout.journals_dir.glob("*.jsonl"))
        lines = journal.read_text().splitlines()
        header = json.loads(lines[0])
        header["spec_schema"] = SPEC_SCHEMA_VERSION + 1
        rogue = layout.journals_dir / "rogue.old-host.jsonl"
        rogue.write_text("\n".join([json.dumps(header), *lines[1:]]) + "\n")
        merged = merge_shard_dir(sd)
        assert merged.complete and not merged.conflicts
        assert [str(rogue)] == merged.skipped_journals


# -- journal schema refusal (satellite) --------------------------------------


class TestJournalSchemaRefusal:
    def _journal_with(self, tmp_path, header: dict, records=()) -> str:
        path = tmp_path / "old.jsonl"
        lines = [json.dumps(header)]
        lines += [json.dumps(r) for r in records]
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_header_pins_spec_schema(self, tmp_path):
        path = self._journal_with(
            tmp_path,
            {
                "kind": "header",
                "journal_schema": JOURNAL_SCHEMA_VERSION,
                "record_schema": RECORD_SCHEMA_VERSION,
                "spec_schema": SPEC_SCHEMA_VERSION,
            },
        )
        SweepJournal(path)  # matching schema resumes fine

    def test_mismatched_spec_schema_refuses_resume(self, tmp_path):
        path = self._journal_with(
            tmp_path,
            {
                "kind": "header",
                "journal_schema": JOURNAL_SCHEMA_VERSION,
                "record_schema": RECORD_SCHEMA_VERSION,
                "spec_schema": SPEC_SCHEMA_VERSION + 1,
            },
        )
        with pytest.raises(JournalSchemaError, match="spec schema"):
            SweepJournal(path)

    def test_headerless_records_refuse_resume(self, tmp_path):
        record = {"kind": "record", **execute_spec(tiny()).to_dict()}
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(JournalSchemaError, match="header"):
            SweepJournal(path)

    def test_cli_resume_refusal_is_a_clean_exit(self, tmp_path):
        from repro.cli import main

        path = self._journal_with(
            tmp_path,
            {
                "kind": "header",
                "journal_schema": JOURNAL_SCHEMA_VERSION,
                "record_schema": RECORD_SCHEMA_VERSION,
                "spec_schema": SPEC_SCHEMA_VERSION + 1,
            },
        )
        with pytest.raises(SystemExit, match="cannot resume"):
            main([
                "sweep", "--resume", path, "--scenario", "pruning",
                "--mode", "megatron", "--layers", "12", "--iterations", "2",
                "--cache-dir", str(tmp_path / "cache"),
            ])

    def test_fresh_journal_header_carries_spec_schema(self, tmp_path):
        path = tmp_path / "new.jsonl"
        journal = SweepJournal(path)
        journal.append(execute_spec(tiny()))
        journal.close()
        [header, *_] = list(iter_journal_entries(path))
        assert header["kind"] == "header"
        assert header["spec_schema"] == SPEC_SCHEMA_VERSION


# -- cache gc / stats (satellite) --------------------------------------------


class TestCacheGcAge:
    def _quarantined_entry(self, cache: ResultCache, spec) -> str:
        cache.put(execute_spec(spec))
        entry = cache.root / f"{spec.spec_hash}.json"
        faults.corrupt_file(entry)
        assert cache.get(spec) is None  # quarantines to *.corrupt
        [corrupt] = cache.root.glob(f"{spec.spec_hash}*.corrupt")
        return str(corrupt)

    def test_stats_counts_quarantine_files_and_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        corrupt = self._quarantined_entry(cache, tiny(seed=0))
        audit = cache.stats()
        assert audit.quarantined == 1
        assert audit.quarantined_bytes == os.path.getsize(corrupt)
        assert not audit.clean

    def test_gc_age_threshold_keeps_recent_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        old = self._quarantined_entry(cache, tiny(seed=0))
        recent = self._quarantined_entry(cache, tiny(seed=1))
        ancient = time.time() - 7200.0  # repro: ignore[RPR102]
        os.utime(old, (ancient, ancient))
        audit = cache.gc(corrupt_age_s=3600.0)
        assert not os.path.exists(old)  # past the threshold: reaped
        assert os.path.exists(recent)  # kept for post-mortem
        assert audit.quarantined == 1
        # age None (the default) reaps everything quarantined
        audit = cache.gc()
        assert not os.path.exists(recent)
        assert audit.quarantined == 0

    def test_cli_gc_corrupt_age(self, tmp_path, capsys):
        from repro.cli import main

        cache = ResultCache(tmp_path)
        corrupt = self._quarantined_entry(cache, tiny(seed=0))
        code = main([
            "cache", "gc", "--cache-dir", str(tmp_path),
            "--corrupt-age", "3600",
        ])
        assert code == 1  # recent quarantine still present
        assert os.path.exists(corrupt)
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 0
        assert not os.path.exists(corrupt)


# -- monotonic timeouts off the main thread (satellite) ----------------------


class TestWorkerModeTimeouts:
    def test_timeout_enforced_without_sigalrm(self):
        # in a worker thread SIGALRM cannot arm; the trainer's
        # monotonic deadline check must stop the run mid-flight
        out: dict = {}

        def body():
            out["record"] = execute_spec(
                tiny(iterations=2000), timeout_s=0.005
            )

        t = threading.Thread(target=body)
        t.start()
        t.join()
        record = out["record"]
        assert record.status == "timeout"
        assert "monotonic" in (record.error or "")

    def test_no_deadline_when_alarm_armable(self):
        # on the main thread SIGALRM arms, so a comfortable budget
        # passes straight through
        record = execute_spec(tiny(iterations=4), timeout_s=60.0)
        assert record.status == "ok"


# -- multi-process stress and chaos ------------------------------------------


def _run_worker(shard_dir: str, worker: str, barrier) -> None:
    barrier.wait()
    ShardWorker(
        shard_dir, worker=worker, ttl_s=5.0, heartbeat_s=0.1
    ).work(wait=True, poll_s=0.05)


def _run_doomed_worker(shard_dir: str) -> None:
    # dies via os._exit on its first shard claim: the lease file stays
    # behind with a heartbeat that will never renew — host death
    faults.install(
        FaultPlan(die_on_claims=(1,)), owner_pid=os.getppid()
    )
    ShardWorker(
        shard_dir, worker="doomed", ttl_s=0.5, heartbeat_s=0.1
    ).work(wait=True, poll_s=0.05)


def _run_survivor(shard_dir: str, worker: str) -> None:
    ShardWorker(
        shard_dir, worker=worker, ttl_s=0.5, heartbeat_s=0.1
    ).work(wait=True, poll_s=0.05)


def _journal_executions(shard_dir) -> dict:
    """spec_hash -> number of *non-cached* journaled executions."""
    executions: dict = {}
    for path in sorted(ShardDirLayout(shard_dir).journals_dir.glob("*.jsonl")):
        for entry in iter_journal_entries(path):
            if entry.get("kind") != "record":
                continue
            if entry.get("cached"):
                continue  # a shared-cache hit, not an execution
            h = entry["spec_hash"]
            executions[h] = executions.get(h, 0) + 1
    return executions


class TestMultiProcess:
    def test_racing_workers_execute_every_spec_exactly_once(self, tmp_path):
        specs = grid(8)
        sd = tmp_path / "shard"
        ShardPlan.build(specs, 8).publish(sd)
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(4)
        procs = [
            ctx.Process(
                target=_run_worker, args=(str(sd), f"w{i}", barrier)
            )
            for i in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        merged = merge_shard_dir(sd)
        assert merged.complete and not merged.conflicts
        assert len(merged.records) == len(specs)
        # the exactly-once contract: every spec hash has exactly one
        # non-cached execution across every worker journal
        executions = _journal_executions(sd)
        assert executions == {spec.spec_hash: 1 for spec in specs}

    def test_killed_worker_is_stolen_from_and_merge_is_identical(self, tmp_path):
        """The acceptance scenario: 3 workers, one dies mid-sweep.

        The dead worker's lease must be observably stolen (tombstone,
        exactly one) and the merged rows must be bit-identical to a
        single-host sweep modulo wall-time fields.
        """
        specs = grid(6)
        sd = tmp_path / "shard"
        plan = ShardPlan.build(specs, 3)
        plan.publish(sd)
        ctx = multiprocessing.get_context("fork")

        doomed = ctx.Process(target=_run_doomed_worker, args=(str(sd),))
        doomed.start()
        doomed.join(timeout=60)
        assert doomed.exitcode == 139  # injected host death, mid-claim

        layout = ShardDirLayout(sd)
        stale = [
            s.shard_id
            for s in plan.shards
            if (layout.leases_dir / f"{s.shard_id}.lease").exists()
        ]
        assert len(stale) == 1  # died holding exactly one lease

        survivors = [
            ctx.Process(target=_run_survivor, args=(str(sd), f"survivor{i}"))
            for i in range(2)
        ]
        for p in survivors:
            p.start()
        for p in survivors:
            p.join(timeout=120)
            assert p.exitcode == 0

        status = shard_dir_status(sd)
        assert status["counts"]["done"] == len(plan.shards)

        merged = merge_shard_dir(sd)
        assert merged.complete and not merged.conflicts
        # the steal is observable and happened exactly once
        assert merged.stolen_shards == {stale[0]: 1}
        mgr = LeaseManager(layout.leases_dir, "observer")
        assert len(mgr.tombstones(stale[0])) == 1
        # merged rows == single-host rows, modulo wall-time fields
        single = SweepRunner().run(specs)
        assert [comparable_payload(r) for r in merged.records] == [
            comparable_payload(r) for r in single
        ]
        # and no spec ran twice: the stolen shard's specs were either
        # re-executed by the stealer exactly once or served from the
        # shared cache
        for count in _journal_executions(sd).values():
            assert count == 1


# -- api facade --------------------------------------------------------------


class TestApiFacade:
    def test_shard_sweep_matches_sweep(self, tmp_path):
        import repro

        specs = grid(3)
        merged = repro.shard_sweep(
            specs, tmp_path / "shard", num_shards=2, worker="api-w1"
        )
        assert merged.complete and not merged.conflicts
        single = repro.sweep(specs, repro.ExecutionPolicy("inline"))
        assert [comparable_payload(r) for r in merged.records] == [
            comparable_payload(r) for r in single
        ]

    def test_top_level_exports(self):
        import repro

        for name in (
            "ShardPlan", "ShardWorker", "MergeResult",
            "merge_shard_dir", "shard_sweep",
        ):
            assert hasattr(repro, name)
