"""Tests for metrics, Partition and Diffusion balancers, convergence."""

import numpy as np
import pytest

from repro.core import (
    DiffusionBalancer,
    PartitionBalancer,
    bubble_ratio_from_loads,
    diffusion_rounds_bound,
    imbalance,
    jain_fairness,
    potential,
)
from repro.core.balancers.partition import partition_balanced
from repro.core.convergence import s_con
from repro.pipeline import PipelinePlan


def dp_optimal_bottleneck(w, S):
    """Exact min-max contiguous partition via O(S n^2) DP (oracle)."""
    n = len(w)
    pre = np.concatenate([[0.0], np.cumsum(w)])
    INF = float("inf")
    dp = np.full((S + 1, n + 1), INF)
    dp[0, 0] = 0.0
    for s in range(1, S + 1):
        for i in range(1, n + 1):
            for j in range(s - 1, i):
                v = max(dp[s - 1, j], pre[i] - pre[j])
                if v < dp[s, i]:
                    dp[s, i] = v
    return dp[S, n]


class TestMetrics:
    def test_imbalance_balanced_zero(self):
        assert imbalance(np.array([2.0, 2.0, 2.0])) == 0.0

    def test_imbalance_formula(self):
        # (4-1)/2.5
        assert imbalance(np.array([1.0, 4.0])) == pytest.approx(1.2)

    def test_potential_zero_when_equal(self):
        assert potential(np.array([3.0, 3.0, 3.0])) == pytest.approx(0.0)

    def test_potential_matches_bruteforce(self, rng):
        x = rng.random(20)
        brute = sum(abs(a - b) for i, a in enumerate(x) for b in x[i + 1 :])
        assert potential(x) == pytest.approx(brute)

    def test_bubble_from_loads(self):
        assert bubble_ratio_from_loads(np.array([1.0, 1.0])) == 0.0
        assert bubble_ratio_from_loads(np.array([1.0, 3.0])) == pytest.approx(
            1 - 2 / 3
        )

    def test_jain(self):
        assert jain_fairness(np.ones(8)) == pytest.approx(1.0)
        assert jain_fairness(np.array([1.0, 0.0])) == pytest.approx(0.5)

    def test_empty_raises(self):
        for fn in (imbalance, potential, bubble_ratio_from_loads, jain_fairness):
            with pytest.raises(ValueError):
                fn(np.array([]))


class TestPartitionBalanced:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_dp_oracle(self, seed):
        rng = np.random.default_rng(seed)
        w = rng.random(20) + 0.01
        for S in (2, 4, 7):
            plan = partition_balanced(w, S)
            got = plan.stage_loads(w).max()
            want = dp_optimal_bottleneck(w, S)
            assert got == pytest.approx(want, rel=1e-9)

    def test_uniform_weights_uniform_split(self):
        plan = partition_balanced(np.ones(12), 4)
        assert plan.stage_sizes() == [3, 3, 3, 3]

    def test_single_stage(self):
        plan = partition_balanced(np.array([1.0, 2.0]), 1)
        assert plan.num_stages == 1

    def test_memory_constraint_respected(self):
        w = np.ones(8)
        mem = np.ones(8)
        plan = partition_balanced(w, 4, memory=mem, capacity=2.0)
        assert all(
            plan.stage_loads(mem)[s] <= 2.0 for s in range(plan.num_stages)
        )

    def test_memory_infeasible_raises(self):
        with pytest.raises(ValueError):
            partition_balanced(np.ones(4), 2, memory=np.full(4, 3.0), capacity=2.0)

    def test_invalid_stage_count(self):
        with pytest.raises(ValueError):
            partition_balanced(np.ones(3), 4)

    def test_zero_weights_ok(self):
        plan = partition_balanced(np.zeros(6), 3)
        assert plan.num_stages == 3


class TestPartitionBalancer:
    def test_never_worse(self, rng):
        w = rng.random(26)
        plan = PipelinePlan.uniform(26, 8)
        res = PartitionBalancer().rebalance(plan, w)
        assert res.loads_after.max() <= res.loads_before.max() + 1e-12
        assert res.improved or res.plan == plan

    def test_rejects_negative_weights(self):
        plan = PipelinePlan.uniform(4, 2)
        with pytest.raises(ValueError):
            PartitionBalancer().rebalance(plan, np.array([1.0, -1.0, 1.0, 1.0]))

    def test_rejects_wrong_length(self):
        plan = PipelinePlan.uniform(4, 2)
        with pytest.raises(ValueError):
            PartitionBalancer().rebalance(plan, np.ones(3))

    def test_fixes_skewed_load(self):
        """One hot layer: the balancer must isolate it."""
        w = np.ones(8)
        w[0] = 5.0
        plan = PipelinePlan.uniform(8, 4)
        res = PartitionBalancer().rebalance(plan, w)
        assert res.plan.stage_sizes()[0] == 1
        assert res.loads_after.max() == pytest.approx(5.0)


class TestDiffusionBalancer:
    def test_reduces_potential_monotonically(self, rng):
        w = rng.random(26) * 3
        plan = PipelinePlan.uniform(26, 6)
        res = DiffusionBalancer(gamma=1e-6).rebalance(plan, w)
        trace = res.potential_trace
        assert all(b <= a + 1e-9 for a, b in zip(trace, trace[1:]))

    def test_never_worse_bottleneck(self, rng):
        for seed in range(5):
            w = np.random.default_rng(seed).random(20) + 0.05
            plan = PipelinePlan.uniform(20, 5)
            res = DiffusionBalancer(gamma=1e-9).rebalance(plan, w)
            assert res.loads_after.max() <= res.loads_before.max() + 1e-12

    def test_converges_close_to_partition(self, rng):
        """Diffusion should approach the centralized optimum."""
        w = rng.random(40) + 0.1
        plan = PipelinePlan.uniform(40, 8)
        d = DiffusionBalancer(gamma=1e-9).rebalance(plan, w)
        p = PartitionBalancer().rebalance(plan, w)
        assert d.loads_after.max() <= p.loads_after.max() * 1.3

    def test_rounds_within_lemma_bound(self, rng):
        w = rng.random(30) + 0.1
        plan = PipelinePlan.uniform(30, 6)
        res = DiffusionBalancer(gamma=0.01 * w.sum()).rebalance(plan, w)
        bound = diffusion_rounds_bound(6, float(w.sum()), 0.01 * w.sum())
        assert res.rounds <= bound

    def test_balanced_input_no_rounds_needed(self):
        w = np.ones(12)
        plan = PipelinePlan.uniform(12, 4)
        res = DiffusionBalancer(gamma=1e-3).rebalance(plan, w)
        assert res.plan == plan

    def test_memory_constraint_respected(self):
        w = np.array([4.0, 1.0, 1.0, 1.0])
        mem = np.array([1.0, 1.0, 1.0, 1.0])
        plan = PipelinePlan.uniform(4, 2)
        # capacity 2 forbids 3-layer stages, so the best gap-reducing
        # move (shrink stage 0 to one layer) is still allowed but the
        # reverse overweighting is not
        res = DiffusionBalancer(gamma=1e-9).rebalance(plan, w, mem, 2.0)
        assert all(res.plan.stage_loads(mem) <= 2.0)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            DiffusionBalancer(gamma=0)

    def test_max_rounds_cap(self, rng):
        w = rng.random(26)
        plan = PipelinePlan.uniform(26, 6)
        res = DiffusionBalancer(gamma=1e-12, max_rounds=3).rebalance(plan, w)
        assert res.rounds <= 3


class TestConvergenceBounds:
    def test_bound_positive_and_monotone_in_n(self):
        b4 = diffusion_rounds_bound(4, 100.0, 0.1)
        b16 = diffusion_rounds_bound(16, 100.0, 0.1)
        assert 1 <= b4 <= b16

    def test_trivial_single_worker(self):
        assert diffusion_rounds_bound(1, 10.0, 0.1) == 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            diffusion_rounds_bound(4, -1, 0.1)
        with pytest.raises(ValueError):
            diffusion_rounds_bound(4, 1, 0)
        with pytest.raises(ValueError):
            s_con(0, 1, 1)

    def test_s_con_scales_n2_logn(self):
        a = s_con(4, 100, 0.1)
        b = s_con(8, 100, 0.1)
        assert b > a * 3  # ~n^2 growth with log factors
