"""Tests for the DynMo controller and profiler."""

import numpy as np
import pytest

from repro.core import DynMoConfig, DynMoController, PipelineProfiler
from repro.model.cost import LayerState, fresh_states
from repro.pipeline import PipelinePlan


class TestProfiler:
    def test_report_shapes(self, gpt24_cost, gpt24_states):
        plan = PipelinePlan.uniform(26, 4)
        rep = PipelineProfiler(gpt24_cost).profile(plan, gpt24_states, iteration=7)
        assert rep.layer_fwd_s.shape == (26,)
        assert rep.layer_bwd_s.shape == (26,)
        assert rep.worker_memory.shape == (4,)
        assert rep.profiled_at_iter == 7
        assert (rep.layer_total_s == rep.layer_fwd_s + rep.layer_bwd_s).all()

    def test_weight_kinds(self, gpt24_cost, gpt24_states):
        plan = PipelinePlan.uniform(26, 4)
        rep = PipelineProfiler(gpt24_cost).profile(plan, gpt24_states)
        assert (rep.weights("time") > 0).any()
        assert (rep.weights("param") > 0).any()
        with pytest.raises(ValueError):
            rep.weights("flops")

    def test_noise_perturbs(self, gpt24_cost, gpt24_states):
        plan = PipelinePlan.uniform(26, 4)
        clean = PipelineProfiler(gpt24_cost, noise=0.0).profile(plan, gpt24_states)
        noisy = PipelineProfiler(gpt24_cost, noise=0.1, seed=1).profile(
            plan, gpt24_states
        )
        assert not np.allclose(clean.layer_fwd_s[1:-1], noisy.layer_fwd_s[1:-1])

    def test_pruned_params_reduced(self, gpt24_cost):
        states = fresh_states(26)
        states[1].sparsity = 0.9
        plan = PipelinePlan.uniform(26, 4)
        rep = PipelineProfiler(gpt24_cost).profile(plan, states)
        assert rep.layer_params[1] == pytest.approx(
            gpt24_cost.specs[1].param_count * 0.1
        )

    def test_negative_noise_raises(self, gpt24_cost):
        with pytest.raises(ValueError):
            PipelineProfiler(gpt24_cost, noise=-0.1)


class TestDynMoConfig:
    def test_defaults_valid(self):
        DynMoConfig()

    def test_invalid_balancer(self):
        with pytest.raises(ValueError):
            DynMoConfig(balancer="magic")

    def test_invalid_weight_by(self):
        with pytest.raises(ValueError):
            DynMoConfig(weight_by="flops")

    def test_invalid_overlap(self):
        with pytest.raises(ValueError):
            DynMoConfig(migration_overlap=2.0)


class TestController:
    def _controller(self, cost, comm=None, **kw):
        return DynMoController(cost, comm, DynMoConfig(**kw))

    def test_should_invoke_cadence(self, gpt24_cost):
        ctl = self._controller(gpt24_cost)
        assert ctl.should_invoke(0, scheme_every=100)
        assert not ctl.should_invoke(50, scheme_every=100)
        assert ctl.should_invoke(100, scheme_every=100)

    def test_config_override_cadence(self, gpt24_cost):
        ctl = self._controller(gpt24_cost, rebalance_every=10)
        assert ctl.should_invoke(10, scheme_every=1000)
        assert not ctl.should_invoke(5, scheme_every=1000)

    def test_rebalances_skewed_model(self, gpt24_cost, comm):
        """Front-frozen model: controller must move layers backward."""
        states = fresh_states(26)
        for i in range(1, 13):
            states[i].frozen = True
            states[i].droppable_bwd = True
        plan = PipelinePlan.uniform(26, 4)
        ctl = self._controller(gpt24_cost, comm, balancer="partition")
        decision = ctl.rebalance(0, plan, states, iter_time_hint=0.1)
        assert decision.rebalanced
        assert decision.layers_moved > 0
        assert decision.plan != plan
        w = ctl.profiler.profile(decision.plan, states).weights("time")
        assert decision.plan.stage_loads(w).max() <= plan.stage_loads(w).max()

    def test_balanced_model_no_move(self, gpt24_cost, comm):
        states = fresh_states(26)
        plan = PipelinePlan.uniform(26, 2)
        ctl = self._controller(gpt24_cost, comm, balancer="diffusion")
        decision = ctl.rebalance(0, plan, states, iter_time_hint=0.1)
        # uniform dense split over 2 stages is near-balanced; diffusion
        # may make at most a marginal improvement without repacking
        assert decision.plan.num_stages == 2

    def test_overhead_accounted(self, gpt24_cost, comm):
        states = fresh_states(26)
        for i in range(1, 13):
            states[i].frozen = True
        ctl = self._controller(gpt24_cost, comm)
        d = ctl.rebalance(0, PipelinePlan.uniform(26, 4), states, iter_time_hint=1.0)
        assert d.overhead_s > 0
        assert ctl.overhead.total_s > 0
        assert ctl.overhead.balance_s > 0
        assert ctl.overhead.profile_s == pytest.approx(
            ctl.config.profile_overhead_frac * 1.0
        )
        assert set(ctl.overhead.as_dict()) == {
            "profile_s",
            "balance_s",
            "migrate_s",
            "total_s",
        }

    def test_repack_shrinks_plan(self, gpt24_cost, comm):
        """Heavily pruned model on generous memory: repack must fire."""
        states = fresh_states(26)
        for s in states[1:-1]:
            s.sparsity = 0.95
        plan = PipelinePlan.uniform(26, 8)
        rep = PipelineProfiler(gpt24_cost).profile(plan, states)
        capacity = float(rep.worker_memory.sum())  # everything fits on one
        ctl = self._controller(
            gpt24_cost,
            comm,
            repack=True,
            repack_target_workers=2,
            memory_capacity_bytes=capacity,
        )
        # first invocation on the dense model sets the compute baseline
        d0 = ctl.rebalance(0, plan, fresh_states(26), iter_time_hint=0.1)
        assert not d0.repacked  # dense model has not shrunk yet
        d = ctl.rebalance(1, plan, states, iter_time_hint=0.1)
        assert d.repacked
        assert d.plan.num_stages < 8
        assert d.released_workers

    def test_num_rebalances_counter(self, gpt24_cost):
        ctl = self._controller(gpt24_cost)
        states = fresh_states(26)
        plan = PipelinePlan.uniform(26, 2)
        ctl.rebalance(0, plan, states)
        ctl.rebalance(1, plan, states)
        assert ctl.num_rebalances == 2


class TestBalancerFailure:
    def test_balancer_exception_releases_timer(self, gpt24_cost, comm):
        """A crashing balancer must not leave the balance timer running
        (the next invocation would raise 'already started')."""

        from repro.core.balancers.base import LoadBalancer

        class Boom(LoadBalancer):
            def rebalance(self, plan, weights, memory_per_layer=None,
                          memory_capacity=None):
                raise RuntimeError("boom")

        ctl = DynMoController(
            gpt24_cost, comm, DynMoConfig(), balancer_override=Boom()
        )
        plan = PipelinePlan.uniform(26, 4)
        with pytest.raises(RuntimeError, match="boom"):
            ctl.rebalance(0, plan, fresh_states(26), iter_time_hint=0.1)
        # the timer is free again: a healthy retry must work
        timer = ctl.timers("balance")
        timer.start()
        timer.stop()
