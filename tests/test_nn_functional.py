"""Tests for repro.nn.functional, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn import functional as F


def numerical_grad(fn, x, eps=1e-6):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = fn()
        x[idx] = orig - eps
        fm = fn()
        x[idx] = orig
        g[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        y = F.softmax(rng.normal(size=(4, 7)))
        assert np.allclose(y.sum(axis=-1), 1.0)

    def test_stability_large_logits(self):
        y = F.softmax(np.array([[1000.0, 1000.0, -1000.0]]))
        assert np.isfinite(y).all()
        assert np.allclose(y[0, :2], 0.5)

    def test_grad_matches_numerical(self, rng):
        x = rng.normal(size=(3, 5))
        w = rng.normal(size=(3, 5))  # random projection for scalar loss
        y = F.softmax(x)
        dy = w
        dx = F.softmax_grad(dy, y)
        num = numerical_grad(lambda: float((F.softmax(x) * w).sum()), x)
        assert np.allclose(dx, num, atol=1e-5)

    def test_log_softmax_consistency(self, rng):
        x = rng.normal(size=(2, 6))
        assert np.allclose(np.exp(F.log_softmax(x)), F.softmax(x))


class TestGelu:
    def test_zero_at_zero(self):
        assert F.gelu(np.zeros(3)).tolist() == [0, 0, 0]

    def test_asymptotics(self):
        x = np.array([10.0, -10.0])
        y = F.gelu(x)
        assert y[0] == pytest.approx(10.0, rel=1e-3)
        assert y[1] == pytest.approx(0.0, abs=1e-3)

    def test_grad_matches_numerical(self, rng):
        x = rng.normal(size=(4, 3))
        w = rng.normal(size=(4, 3))
        dx = F.gelu_grad(w, x)
        num = numerical_grad(lambda: float((F.gelu(x) * w).sum()), x)
        assert np.allclose(dx, num, atol=1e-5)


class TestLayerNorm:
    def test_output_normalised(self, rng):
        x = rng.normal(2.0, 3.0, size=(5, 16))
        y, _ = F.layernorm(x, np.ones(16), np.zeros(16))
        assert np.allclose(y.mean(axis=-1), 0.0, atol=1e-10)
        assert np.allclose(y.std(axis=-1), 1.0, atol=1e-2)

    def test_affine_applied(self, rng):
        x = rng.normal(size=(3, 8))
        gamma, beta = np.full(8, 2.0), np.full(8, 0.5)
        y, _ = F.layernorm(x, gamma, beta)
        y0, _ = F.layernorm(x, np.ones(8), np.zeros(8))
        assert np.allclose(y, 2.0 * y0 + 0.5)

    def test_grad_matches_numerical(self, rng):
        x = rng.normal(size=(2, 3, 8))
        gamma = rng.normal(1.0, 0.1, size=8)
        beta = rng.normal(0.0, 0.1, size=8)
        w = rng.normal(size=(2, 3, 8))

        def loss():
            y, _ = F.layernorm(x, gamma, beta)
            return float((y * w).sum())

        y, cache = F.layernorm(x, gamma, beta)
        dx, dgamma, dbeta = F.layernorm_grad(w, cache)
        assert np.allclose(dx, numerical_grad(loss, x), atol=1e-5)
        assert np.allclose(dgamma, numerical_grad(loss, gamma), atol=1e-5)
        assert np.allclose(dbeta, numerical_grad(loss, beta), atol=1e-5)


class TestCausalMask:
    def test_lower_triangular(self):
        m = F.causal_mask(4)
        assert m[0, 0] and not m[0, 1]
        assert m[3].all()
        assert m.sum() == 10
