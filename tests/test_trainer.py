"""Tests for TrainingConfig, Trainer, throughput, checkpointing."""

import numpy as np
import pytest

from repro.cluster.job_manager import ElasticJobManager
from repro.core import DynMoConfig, DynMoController
from repro.dynamics import FreezingDynamism, StaticScheme
from repro.model.cost import LayerState, fresh_states
from repro.pipeline import PipelinePlan
from repro.training import (
    Trainer,
    TrainingConfig,
    ThroughputMeter,
    load_checkpoint,
    save_checkpoint,
)
from repro.training.throughput import speedup
from repro.training.trainer import states_fingerprint


class TestTrainingConfig:
    def test_defaults(self):
        cfg = TrainingConfig()
        assert cfg.micro_batches == 4 * cfg.pp_stages
        assert cfg.total_gpus == cfg.pp_stages * cfg.dp_ways

    def test_explicit_micro(self):
        assert TrainingConfig(num_micro=7).micro_batches == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(iterations=0)
        with pytest.raises(ValueError):
            TrainingConfig(pp_stages=0)
        with pytest.raises(ValueError):
            TrainingConfig(dp_ways=-1)


class TestFingerprint:
    def test_stable(self):
        a = fresh_states(4)
        b = fresh_states(4)
        assert states_fingerprint(a) == states_fingerprint(b)

    def test_sensitive_to_changes(self):
        a = fresh_states(4)
        b = fresh_states(4)
        b[2].sparsity = 0.5
        assert states_fingerprint(a) != states_fingerprint(b)

    def test_sensitive_to_flags(self):
        a, b = fresh_states(2), fresh_states(2)
        b[0].frozen = True
        assert states_fingerprint(a) != states_fingerprint(b)


class TestTrainer:
    def _trainer(self, cost, specs, comm=None, controller=None, iters=20, **kw):
        cfg = TrainingConfig(
            iterations=iters, pp_stages=4, dp_ways=1, record_every=5, **kw
        )
        scheme = StaticScheme(specs)
        return Trainer(cfg, cost, scheme, comm=comm, controller=controller)

    def test_static_run_completes(self, gpt24_cost, gpt24_specs):
        res = self._trainer(gpt24_cost, gpt24_specs).run()
        assert res.iterations == 20
        assert res.total_time_s > 0
        assert res.tokens_per_s > 0
        assert res.total_tokens == 20 * 2 * 2048 * 16  # iters*mb*seq*micros

    def test_static_iterations_memoised(self, gpt24_cost, gpt24_specs):
        """Static model: every iteration identical -> history flat."""
        res = self._trainer(gpt24_cost, gpt24_specs).run()
        spans = [m for _, m in res.makespan_history]
        assert all(s == pytest.approx(spans[0]) for s in spans)

    def test_run_iterations_override(self, gpt24_cost, gpt24_specs):
        res = self._trainer(gpt24_cost, gpt24_specs, iters=50).run(iterations=5)
        assert res.iterations == 5

    def test_dynmo_beats_static_on_freezing(self, gpt24_cost, gpt24_specs, comm):
        cfg = TrainingConfig(iterations=60, pp_stages=4, dp_ways=1, record_every=10)
        mk = lambda: FreezingDynamism(gpt24_specs, freeze_every=10, tau0=10, seed=0)
        static = Trainer(cfg, gpt24_cost, mk(), comm=comm).run()
        ctl = DynMoController(gpt24_cost, comm, DynMoConfig(balancer="partition"))
        dyn = Trainer(cfg, gpt24_cost, mk(), comm=comm, controller=ctl).run()
        assert dyn.tokens_per_s > static.tokens_per_s
        assert dyn.mean_bubble_ratio < static.mean_bubble_ratio

    def test_overhead_reported(self, gpt24_cost, gpt24_specs, comm):
        cfg = TrainingConfig(iterations=30, pp_stages=4, dp_ways=1)
        scheme = FreezingDynamism(gpt24_specs, freeze_every=10, tau0=10, seed=0)
        ctl = DynMoController(gpt24_cost, comm, DynMoConfig())
        res = Trainer(cfg, gpt24_cost, scheme, comm=comm, controller=ctl).run()
        assert res.overhead_s > 0
        assert res.overhead_fraction < 0.2

    def test_job_manager_integration(self, gpt24_cost, gpt24_specs, comm):
        jm = ElasticJobManager(total_gpus=8)
        cfg = TrainingConfig(iterations=10, pp_stages=4, dp_ways=2)
        t = Trainer(
            cfg, gpt24_cost, StaticScheme(gpt24_specs), comm=comm, job_manager=jm
        )
        assert jm.claims["train"] == 8
        res = t.run()
        assert res.average_gpus == pytest.approx(8.0)

    def test_stage_count_history(self, gpt24_cost, gpt24_specs):
        res = self._trainer(gpt24_cost, gpt24_specs).run()
        assert all(s == 4 for _, s in res.stage_count_history)


class TestThroughput:
    def test_meter(self):
        m = ThroughputMeter()
        m.record(1000, 2.0)
        m.record(1000, 2.0)
        assert m.tokens_per_s == pytest.approx(500.0)
        assert m.percentile(50) == pytest.approx(500.0)
        assert m.per_gpu(4) == pytest.approx(125.0)

    def test_meter_validation(self):
        m = ThroughputMeter()
        with pytest.raises(ValueError):
            m.record(-1, 1)
        with pytest.raises(ValueError):
            m.per_gpu(0)
        assert m.percentile(50) == 0.0

    def test_speedup(self):
        assert speedup(1200, 1000) == pytest.approx(1.2)
        with pytest.raises(ValueError):
            speedup(1, 0)


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        plan = PipelinePlan.uniform(10, 4)
        states = fresh_states(10)
        states[3].sparsity = 0.7
        states[5].frozen = True
        path = tmp_path / "ckpt.json"
        save_checkpoint(path, 123, plan, states)
        it, plan2, states2 = load_checkpoint(path)
        assert it == 123
        assert plan2 == plan
        assert states2[3].sparsity == 0.7
        assert states2[5].frozen

    def test_reshard_on_restore(self, tmp_path):
        """Re-pack-with-restart: restore onto fewer workers."""
        plan = PipelinePlan.uniform(12, 6)
        path = tmp_path / "ckpt.json"
        save_checkpoint(path, 5, plan, fresh_states(12))
        _, plan2, _ = load_checkpoint(path, num_stages=3)
        assert plan2.num_stages == 3
        assert plan2.num_layers == 12


class TestIterationCache:
    """The per-trainer iteration memoiser: bounded LRU + version-gated
    state fingerprinting."""

    def _trainer(self, cost, specs, iters=10):
        cfg = TrainingConfig(iterations=iters, pp_stages=4, dp_ways=1)
        return Trainer(cfg, cost, StaticScheme(specs))

    def test_lru_evicts_oldest_not_everything(self, gpt24_cost, gpt24_specs):
        t = self._trainer(gpt24_cost, gpt24_specs)
        t._cache_capacity = 4
        plans = [PipelinePlan.uniform(26, s) for s in (2, 3, 4, 5)]
        for p in plans:
            t.plan = p
            t._iteration_result()
        assert len(t._cache) == 4
        # touch the oldest so it becomes most-recent ...
        t.plan = plans[0]
        t._iteration_result()
        # ... then overflow: plans[1] (now the LRU entry) is evicted
        t.plan = PipelinePlan.uniform(26, 6)
        t._iteration_result()
        assert len(t._cache) == 4
        keys = list(t._cache)
        assert all(k[0] != plans[1].boundaries for k in keys)
        assert any(k[0] == plans[0].boundaries for k in keys)

    def test_cache_capacity_bounds_size(self, gpt24_cost, gpt24_specs):
        t = self._trainer(gpt24_cost, gpt24_specs)
        t._cache_capacity = 3
        for s in range(2, 9):
            t.plan = PipelinePlan.uniform(26, s)
            t._iteration_result()
        assert len(t._cache) == 3

    def test_fingerprint_skipped_while_version_unchanged(
        self, gpt24_cost, gpt24_specs, monkeypatch
    ):
        t = self._trainer(gpt24_cost, gpt24_specs)
        calls = []
        import repro.training.trainer as trainer_mod

        real = trainer_mod.states_fingerprint
        monkeypatch.setattr(
            trainer_mod,
            "states_fingerprint",
            lambda states, out=None: calls.append(1) or real(states, out),
        )
        # prewarm=False: the batched prewarm dry-run hashes once itself;
        # this test pins the *run loop's* version-gated memoisation
        t.run(prewarm=False)  # StaticScheme: version never changes
        assert len(calls) == 1

    def test_fingerprint_recomputed_on_version_bump(self, gpt24_cost, gpt24_specs):
        t = self._trainer(gpt24_cost, gpt24_specs)
        k1 = t._states_key()
        assert t._states_key() == k1  # memoised
        t.states[2].sparsity = 0.5
        t.scheme.version += 1  # what advance() does on a change
        k2 = t._states_key()
        assert k2 != k1

    def test_scheme_advance_bumps_version_only_on_change(self, gpt24_specs):
        scheme = FreezingDynamism(gpt24_specs, freeze_every=10, tau0=10, seed=0)
        states = scheme.initial_states()
        v0 = scheme.version
        scheme.advance(1, states)  # not a freeze step
        assert scheme.version == v0
        scheme.advance(30, states)  # freeze step well past tau0 (noisy)
        assert scheme.version > v0

    def test_states_fingerprint_buffer_reuse_matches(self):
        states = fresh_states(5)
        states[1].attn_density = 0.25
        buf = np.empty((5, 6))
        assert states_fingerprint(states, out=buf) == states_fingerprint(states)

    def test_states_fingerprint_matches_row_loop(self):
        """Regression: the struct-of-arrays column fills must produce
        byte-identical digests to the original per-layer row loop."""
        import hashlib

        def loop_fingerprint(states):
            out = np.empty((len(states), 6))
            for i, s in enumerate(states):
                row = out[i]
                row[0] = s.sparsity
                row[1] = 1.0 if s.frozen else 0.0
                row[2] = 1.0 if s.droppable_bwd else 0.0
                row[3] = s.attn_density
                row[4] = s.token_fraction
                row[5] = s.moe_multiplier
            return hashlib.blake2b(out.tobytes(), digest_size=16).digest()

        rng = np.random.default_rng(0)
        for _ in range(20):
            states = fresh_states(int(rng.integers(1, 40)))
            for s in states:
                s.sparsity = float(rng.uniform(0, 1))
                s.frozen = bool(rng.random() < 0.5)
                s.droppable_bwd = bool(rng.random() < 0.5)
                s.attn_density = float(rng.uniform(0, 1))
                s.token_fraction = float(rng.uniform(0, 1))
                s.moe_multiplier = float(rng.uniform(0, 3))
            assert states_fingerprint(states) == loop_fingerprint(states)


class TestPrewarmAndLockstep:
    """The batched Trainer fast path and the lockstep driver."""

    def _trainer(self, cost, specs, scheme=None, iters=30, **kw):
        cfg = TrainingConfig(
            iterations=iters, pp_stages=4, dp_ways=1, record_every=5, **kw
        )
        return Trainer(cfg, cost, scheme or StaticScheme(specs))

    def test_prewarm_seeds_cache_and_matches(self, gpt24_cost, gpt24_specs):
        scheme = FreezingDynamism(gpt24_specs, freeze_every=5, tau0=5, seed=0)
        warm = self._trainer(gpt24_cost, gpt24_specs, scheme=scheme)
        n = warm.prewarm(30)
        assert n >= 2  # freezing visits several distinct states
        assert len(warm._cache) == n
        res_warm = warm.run(prewarm=False)  # served from the seeded cache

        cold_scheme = FreezingDynamism(gpt24_specs, freeze_every=5, tau0=5, seed=0)
        cold = self._trainer(gpt24_cost, gpt24_specs, scheme=cold_scheme)
        res_cold = cold.run(prewarm=False)
        assert res_warm.total_time_s == res_cold.total_time_s
        assert res_warm.makespan_history == res_cold.makespan_history

    def test_prewarm_noop_for_static_scheme(self, gpt24_cost, gpt24_specs):
        t = self._trainer(gpt24_cost, gpt24_specs)
        assert t.prewarm(30) == 0  # one distinct state: nothing to batch

    def test_prewarm_refused_with_controller(self, gpt24_cost, gpt24_specs, comm):
        controller = DynMoController(gpt24_cost, comm, DynMoConfig(balancer="partition"))
        cfg = TrainingConfig(iterations=10, pp_stages=4, dp_ways=1)
        scheme = FreezingDynamism(gpt24_specs, freeze_every=2, tau0=2, seed=0)
        t = Trainer(cfg, gpt24_cost, scheme, comm=comm, controller=controller)
        assert t.prewarm(10) == 0

    def test_run_prewarm_auto_is_bit_identical(self, gpt24_cost, gpt24_specs):
        mk = lambda: FreezingDynamism(gpt24_specs, freeze_every=4, tau0=4, seed=3)  # noqa: E731
        auto = self._trainer(gpt24_cost, gpt24_specs, scheme=mk()).run()
        off = self._trainer(gpt24_cost, gpt24_specs, scheme=mk()).run(prewarm=False)
        assert auto.total_time_s == off.total_time_s
        assert auto.bubble_history == off.bubble_history

    def test_lockstep_matches_solo_runs(self, gpt24_cost, gpt24_specs):
        from repro.training import run_trainers_lockstep

        mk = lambda seed: FreezingDynamism(  # noqa: E731
            gpt24_specs, freeze_every=4, tau0=4, seed=seed
        )
        trainers = [
            self._trainer(gpt24_cost, gpt24_specs, scheme=mk(seed))
            for seed in range(3)
        ]
        outcomes = run_trainers_lockstep([(t, None) for t in trainers])
        for seed, outcome in enumerate(outcomes):
            solo = self._trainer(gpt24_cost, gpt24_specs, scheme=mk(seed)).run()
            assert outcome.total_time_s == solo.total_time_s
            assert outcome.makespan_history == solo.makespan_history

    def test_lockstep_isolates_failures(self, gpt24_cost, gpt24_specs):
        from repro.training import run_trainers_lockstep

        class Exploding(StaticScheme):
            def step(self, k, states):
                if k == 5:
                    raise RuntimeError("boom")
                return False

        bad = self._trainer(gpt24_cost, gpt24_specs, scheme=Exploding(gpt24_specs))
        good = self._trainer(gpt24_cost, gpt24_specs)
        outcomes = run_trainers_lockstep([(bad, None), (good, None)])
        assert isinstance(outcomes[0], RuntimeError)
        assert outcomes[1].iterations == 30

    def test_lockstep_deadline_times_out_runs(self, gpt24_cost, gpt24_specs):
        from repro.training import LockstepTimeout, run_trainers_lockstep

        t = self._trainer(gpt24_cost, gpt24_specs, iters=10_000)
        (outcome,) = run_trainers_lockstep([(t, None)], deadline_s=0.0)
        assert isinstance(outcome, LockstepTimeout)

    def test_lockstep_deadline_never_overwrites_finished_runs(
        self, gpt24_cost, gpt24_specs
    ):
        """Regression: a fast run that completed all its iterations
        before the deadline expired must get its TrainingResult, not be
        swept into the slow bin-mate's LockstepTimeout."""
        import time as _time

        from repro.training import LockstepTimeout, run_trainers_lockstep

        class Slow(StaticScheme):
            def step(self, k, states):
                _time.sleep(0.2)
                return False

        fast = self._trainer(gpt24_cost, gpt24_specs, scheme=Slow(gpt24_specs), iters=1)
        slow = self._trainer(gpt24_cost, gpt24_specs, scheme=Slow(gpt24_specs), iters=50)
        # after iteration 0 (~0.4s of scheme steps) the deadline is long
        # expired; fast has no iterations left, slow has 49
        out_fast, out_slow = run_trainers_lockstep(
            [(fast, None), (slow, None)], deadline_s=0.1
        )
        assert isinstance(out_slow, LockstepTimeout)
        assert not isinstance(out_fast, BaseException)
        assert out_fast.iterations == 1

    def test_lockstep_mixed_iteration_counts(self, gpt24_cost, gpt24_specs):
        from repro.training import run_trainers_lockstep

        a = self._trainer(gpt24_cost, gpt24_specs, iters=7)
        b = self._trainer(gpt24_cost, gpt24_specs, iters=23)
        out_a, out_b = run_trainers_lockstep([(a, None), (b, None)])
        assert out_a.iterations == 7
        assert out_b.iterations == 23
