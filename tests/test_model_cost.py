"""Tests for GPT configs and the per-layer cost model."""

import numpy as np
import pytest

from repro.model import (
    GPTConfig,
    LayerSpec,
    LayerState,
    ModelCost,
    build_layer_specs,
    gpt_24,
    gpt_48,
    mixtral_8x7b_like,
)
from repro.model.cost import fresh_states


class TestConfig:
    def test_presets(self):
        assert gpt_24().num_layers == 24
        assert gpt_48().num_layers == 48
        assert gpt_24().hidden == 1024
        assert gpt_24().seq_len == 2048
        assert gpt_24().num_heads == 32

    def test_moe_layers(self):
        cfg = mixtral_8x7b_like()
        assert cfg.is_moe
        assert len(cfg.moe_layers()) == 32

    def test_moe_every_two(self):
        cfg = GPTConfig("x", num_layers=4, moe_every=2, num_experts=4)
        assert cfg.moe_layers() == [1, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            GPTConfig("x", num_layers=0)
        with pytest.raises(ValueError):
            GPTConfig("x", num_layers=4, hidden=100, num_heads=3)
        with pytest.raises(ValueError):
            GPTConfig("x", num_layers=4, moe_every=1, num_experts=1)


class TestBuildLayerSpecs:
    def test_layout(self):
        specs = build_layer_specs(gpt_24())
        assert len(specs) == 26
        assert specs[0].kind == "embedding"
        assert specs[-1].kind == "head"
        assert all(sp.kind == "block" for sp in specs[1:-1])

    def test_moe_flags(self):
        specs = build_layer_specs(mixtral_8x7b_like())
        assert all(sp.is_moe for sp in specs[1:-1])
        assert specs[1].num_experts == 8

    def test_moe_ffn_flops_scale_with_topk(self):
        dense = build_layer_specs(gpt_24())[1]
        cfg = GPTConfig("x", num_layers=24, moe_every=1, num_experts=8, moe_top_k=2)
        moe = build_layer_specs(cfg)[1]
        assert moe.ffn_flops == pytest.approx(dense.ffn_flops * 2)

    def test_tp_shards_head(self):
        s1 = build_layer_specs(gpt_24(), tp_ways=1)
        s8 = build_layer_specs(gpt_24(), tp_ways=8)
        assert s8[-1].matmul_flops == pytest.approx(s1[-1].matmul_flops / 8)

    def test_ffn_not_exceeding_matmul(self):
        for sp in build_layer_specs(gpt_24()):
            assert sp.ffn_flops <= sp.matmul_flops + 1e-9

    def test_bad_tp_raises(self):
        with pytest.raises(ValueError):
            build_layer_specs(gpt_24(), tp_ways=0)


class TestLayerState:
    def test_defaults_valid(self):
        LayerState().validate()

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            LayerState(sparsity=1.5).validate()
        with pytest.raises(ValueError):
            LayerState(attn_density=-0.1).validate()
        with pytest.raises(ValueError):
            LayerState(moe_multiplier=-1).validate()

    def test_copy_independent(self):
        a = LayerState(sparsity=0.5)
        b = a.copy()
        b.sparsity = 0.9
        assert a.sparsity == 0.5


class TestModelCost:
    @pytest.fixture
    def cost(self):
        return ModelCost(build_layer_specs(gpt_24()))

    def test_forward_time_positive(self, cost):
        st = LayerState()
        assert cost.forward_time(cost.specs[1], st) > 0

    def test_backward_approx_twice_forward(self, cost):
        st = LayerState()
        f = cost.forward_time(cost.specs[1], st)
        b = cost.backward_time(cost.specs[1], st)
        assert 1.5 * f < b < 3.0 * f

    def test_frozen_drops_weight_grad(self, cost):
        sp = cost.specs[1]
        full = cost.backward_time(sp, LayerState())
        frozen = cost.backward_time(sp, LayerState(frozen=True))
        assert frozen < full
        assert cost.weight_grad_time(sp, LayerState(frozen=True)) == 0.0

    def test_droppable_bwd_zero(self, cost):
        st = LayerState(frozen=True, droppable_bwd=True)
        assert cost.backward_time(cost.specs[1], st) == 0.0

    def test_b_w_split_sums_to_backward(self, cost):
        sp = cost.specs[1]
        st = LayerState()
        total = cost.backward_time(sp, st)
        split = cost.backward_input_time(sp, st) + cost.weight_grad_time(sp, st)
        assert split == pytest.approx(total)

    def test_token_fraction_scales_time(self, cost):
        sp = cost.specs[1]
        full = cost.forward_time(sp, LayerState())
        half = cost.forward_time(sp, LayerState(token_fraction=0.5))
        assert half == pytest.approx(0.5 * full)

    def test_attn_density_scales_quadratic_only(self, cost):
        sp = cost.specs[1]
        dense = cost.forward_time(sp, LayerState())
        sparse = cost.forward_time(sp, LayerState(attn_density=0.0))
        expected_drop = sp.attn_quad_flops / (cost.peak_flops * cost.efficiency)
        assert dense - sparse == pytest.approx(expected_drop)

    def test_moe_multiplier_scales_ffn(self, cost):
        sp = cost.specs[1]
        base = cost.forward_time(sp, LayerState())
        doubled = cost.forward_time(sp, LayerState(moe_multiplier=2.0))
        extra = sp.ffn_flops / (cost.peak_flops * cost.efficiency)
        assert doubled - base == pytest.approx(extra)

    def test_high_sparsity_faster(self, cost):
        sp = cost.specs[1]
        dense = cost.forward_time(sp, LayerState())
        pruned = cost.forward_time(sp, LayerState(sparsity=0.95))
        assert pruned < dense

    def test_moderate_sparsity_not_faster(self, cost):
        """Below the Sputnik crossover (~75%), sparse kernels don't
        win, so time must not decrease."""
        sp = cost.specs[1]
        dense = cost.forward_time(sp, LayerState())
        half = cost.forward_time(sp, LayerState(sparsity=0.5))
        assert half >= dense * 0.99

    def test_memory_components(self, cost):
        sp = cost.specs[1]
        st = LayerState()
        assert cost.param_bytes(sp, st) > 0
        assert cost.grad_bytes(sp, st) > 0
        assert cost.optimizer_bytes(sp, st) == 2 * cost.grad_bytes(sp, st)
        assert cost.layer_memory(sp, st, in_flight=2) > cost.param_bytes(sp, st)

    def test_frozen_memory_smaller(self, cost):
        sp = cost.specs[1]
        assert cost.layer_memory(sp, LayerState(frozen=True)) < cost.layer_memory(
            sp, LayerState()
        )

    def test_pruned_memory_smaller_at_high_sparsity(self, cost):
        sp = cost.specs[1]
        assert cost.param_bytes(sp, LayerState(sparsity=0.9)) < cost.param_bytes(
            sp, LayerState()
        )

    def test_totals_require_matching_lengths(self, cost):
        with pytest.raises(ValueError):
            cost.total_forward_time([LayerState()])

    def test_fresh_states(self):
        states = fresh_states(5)
        assert len(states) == 5
        assert all(s.sparsity == 0 and not s.frozen for s in states)

    def test_empty_specs_raises(self):
        with pytest.raises(ValueError):
            ModelCost([])
