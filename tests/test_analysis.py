"""Tests for repro.analysis: the `repro lint` static-analysis pass.

Checker behaviour is exercised two ways: inline snippets (parsed with
``SourceFile.parse``) for targeted positive/negative cases, and the
on-disk corpus under ``tests/lint_fixtures/`` for end-to-end runs
through ``lint_paths`` (which is also what CI's lint self-test uses).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    Diagnostic,
    LintReport,
    SourceFile,
    all_checkers,
    all_codes,
    iter_python_files,
    lint_paths,
    lint_sources,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO = Path(__file__).parent.parent


def codes_of(report: LintReport) -> list[str]:
    return [d.code for d in report.diagnostics]


def lint_text(text: str, display: str = "snippet.py") -> LintReport:
    return lint_sources([SourceFile.parse(text, display)])


# ---------------------------------------------------------------------------
# framework: diagnostics, suppressions, discovery, report schema
# ---------------------------------------------------------------------------


class TestFramework:
    def test_diagnostic_format(self):
        d = Diagnostic("src/x.py", 3, 7, "RPR101", "boom", "determinism")
        assert d.format() == "src/x.py:3:7 RPR101 boom"

    def test_syntax_error_is_rpr001_not_crash(self):
        report = lint_text("def broken(:\n")
        assert codes_of(report) == ["RPR001"]
        assert not report.ok

    def test_all_codes_covers_every_family(self):
        codes = all_codes()
        for code in ("RPR001", "RPR002", "RPR101", "RPR102", "RPR103",
                     "RPR104", "RPR201", "RPR202", "RPR203", "RPR204",
                     "RPR301", "RPR302", "RPR401", "RPR402", "RPR403",
                     "RPR404"):
            assert code in codes, code

    def test_same_line_suppression(self):
        report = lint_text("import time\nt = time.time()  # repro: ignore[RPR102]\n")
        assert report.ok
        assert report.suppressed == 1
        assert report.suppressions_used == [("snippet.py", 2, "RPR102")]

    def test_comment_line_above_suppression(self):
        report = lint_text(
            "import time\n"
            "# repro: ignore[RPR102] — justified\n"
            "t = time.time()\n"
        )
        assert report.ok and report.suppressed == 1

    def test_multi_code_suppression(self):
        report = lint_text(
            "import time\n"
            "# repro: ignore[RPR102, RPR104]\n"
            "t = hash(time.time())\n"
        )
        assert report.ok and report.suppressed == 2

    def test_suppression_does_not_leak_to_other_lines(self):
        report = lint_text(
            "import time\n"
            "a = time.time()  # repro: ignore[RPR102]\n"
            "b = time.time()\n"
        )
        assert codes_of(report) == ["RPR102"]
        assert report.diagnostics[0].line == 3

    def test_wrong_code_suppression_does_not_apply(self):
        report = lint_text("t = hash(1)  # repro: ignore[RPR102]\n")
        assert codes_of(report) == ["RPR104"]

    def test_blanket_ignore_rejected(self):
        report = lint_text("import time\nt = time.time()  # repro: ignore\n")
        assert "RPR002" in codes_of(report)
        assert "RPR102" in codes_of(report)  # and nothing got hidden

    def test_malformed_codes_rejected(self):
        report = lint_text("x = 1  # repro: ignore[NOTACODE]\n")
        assert codes_of(report) == ["RPR002"]

    def test_select_filters_codes(self):
        text = "import time\nt = hash(time.time())\n"
        report = lint_sources(
            [SourceFile.parse(text, "s.py")], select=lambda c: c == "RPR104"
        )
        assert codes_of(report) == ["RPR104"]

    def test_iter_python_files_skips_fixture_and_cache_dirs(self):
        found = list(iter_python_files([str(REPO / "tests")]))
        assert all("lint_fixtures" not in p.parts for p in found)
        assert all("__pycache__" not in p.parts for p in found)
        assert any(p.name == "test_analysis.py" for p in found)

    def test_iter_python_files_explicit_file_bypasses_skip(self):
        target = FIXTURES / "seeded_violation.py"
        assert list(iter_python_files([str(target)])) == [target]

    def test_iter_python_files_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files(["no/such/dir"]))

    def test_json_report_schema(self):
        report = lint_text("import time\nt = time.time()\n")
        payload = json.loads(report.to_json())
        assert payload["version"] == 1
        assert payload["tool"] == "repro-lint"
        assert payload["files"] == 1
        assert payload["counts"] == {"RPR102": 1}
        assert payload["suppressed"] == 0
        (diag,) = payload["diagnostics"]
        assert set(diag) == {"path", "line", "col", "code", "message", "checker"}
        assert diag["code"] == "RPR102" and diag["line"] == 2

    def test_text_report_summary_line(self):
        clean = lint_text("x = 1\n")
        assert clean.format_text().endswith("1 files checked: clean")
        dirty = lint_text("t = hash(1)\n")
        assert "1 finding (1 RPR104)" in dirty.format_text()

    def test_scope_only_restricts_repro_package_paths(self):
        det = next(c for c in all_checkers() if c.name == "determinism")
        in_scope = SourceFile.parse("x = 1\n", "src/repro/pipeline/engine.py")
        out_of_scope = SourceFile.parse("x = 1\n", "src/repro/nn/layers.py")
        external = SourceFile.parse("x = 1\n", "tests/test_foo.py")
        assert det.applies_to(in_scope)
        assert not det.applies_to(out_of_scope)
        assert det.applies_to(external)


# ---------------------------------------------------------------------------
# determinism checker (RPR1xx)
# ---------------------------------------------------------------------------


class TestDeterminismChecker:
    def test_fixture_positives(self):
        report = lint_paths([FIXTURES / "determinism_bad.py"])
        counts = report.counts
        assert counts["RPR101"] == 3
        assert counts["RPR102"] == 2
        assert counts["RPR103"] == 2
        assert counts["RPR104"] == 1

    def test_fixture_negatives(self):
        report = lint_paths([FIXTURES / "determinism_ok.py"])
        assert report.ok, report.format_text()

    @pytest.mark.parametrize(
        "snippet,code",
        [
            ("import random\nrandom.shuffle(xs)\n", "RPR101"),
            ("import random\nr = random.Random()\n", "RPR101"),
            ("import numpy as np\nnp.random.seed(0)\n", "RPR101"),
            ("from numpy.random import default_rng\nr = default_rng()\n", "RPR101"),
            ("import uuid\nu = uuid.uuid4()\n", "RPR101"),
            ("import secrets\nt = secrets.token_hex()\n", "RPR101"),
            ("from time import time\nt = time()\n", "RPR102"),
            ("from datetime import datetime\nd = datetime.utcnow()\n", "RPR102"),
            ("for x in {1, 2}:\n    print(x)\n", "RPR103"),
            ("ys = [f(x) for x in set(xs)]\n", "RPR103"),
            ("h = hash('key')\n", "RPR104"),
        ],
    )
    def test_positive_snippets(self, snippet, code):
        assert code in codes_of(lint_text(snippet))

    @pytest.mark.parametrize(
        "snippet",
        [
            "import random\nr = random.Random(42)\n",
            "import numpy as np\nr = np.random.default_rng(7)\n",
            "import time\nt = time.perf_counter()\n",
            "for x in sorted({1, 2}):\n    print(x)\n",
            "n = len(set(xs))\n",
            "ys = sorted(f(x) for x in set(xs))\n",
            "zs = {f(x) for x in set(xs)}\n",  # set-from-set is order-free
            "import hashlib\nh = hashlib.sha256(b'key')\n",
        ],
    )
    def test_negative_snippets(self, snippet):
        report = lint_text(snippet)
        assert report.ok, report.format_text()


# ---------------------------------------------------------------------------
# spec-hash checker (RPR2xx)
# ---------------------------------------------------------------------------


class TestSpecHashChecker:
    def test_fixture_positives(self):
        report = lint_paths([FIXTURES / "spec_hash_bad.py"])
        counts = report.counts
        assert counts["RPR201"] == 2  # ForgotToHash.new_knob, StaleKey.layers
        assert counts["RPR202"] == 1  # StaleKey.removed_field
        assert counts["RPR203"] == 1  # LossyRoundTrip.c
        assert counts["RPR204"] == 1  # Unverifiable

    def test_fixture_negatives(self):
        report = lint_paths([FIXTURES / "spec_hash_ok.py"])
        assert report.ok, report.format_text()

    def test_unhashed_field_on_runspec_like_copy_is_caught(self):
        """The acceptance scenario: clone RunSpec's hashing shape, add a
        field without folding it into the hash payload — RPR201 fires."""
        spec_src = (REPO / "src/repro/orchestrator/spec.py").read_text()
        assert "asdict(self)" in spec_src  # real RunSpec is hash-complete
        snippet = (
            "import hashlib, json\n"
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class RunSpecCopy:\n"
            "    layers: int\n"
            "    seed: int\n"
            "    forgotten_knob: float\n"
            "    def to_dict(self):\n"
            "        return {'layers': self.layers, 'seed': self.seed}\n"
            "    @property\n"
            "    def spec_hash(self):\n"
            "        payload = dict(self.to_dict(), _schema=3)\n"
            "        raw = json.dumps(payload, sort_keys=True)\n"
            "        return hashlib.blake2b(raw.encode()).hexdigest()\n"
        )
        report = lint_text(snippet)
        assert [d.code for d in report.diagnostics] == ["RPR201"]
        assert "forgotten_knob" in report.diagnostics[0].message

    def test_asdict_covers_future_fields(self):
        snippet = (
            "import hashlib\n"
            "from dataclasses import asdict, dataclass\n"
            "@dataclass\n"
            "class Spec:\n"
            "    a: int\n"
            "    later_addition: str\n"
            "    def spec_hash(self):\n"
            "        payload = asdict(self)\n"
            "        return hashlib.blake2b(repr(payload).encode()).hexdigest()\n"
        )
        assert lint_text(snippet).ok

    def test_classvar_fields_not_required_in_hash(self):
        snippet = (
            "import hashlib\n"
            "from dataclasses import dataclass\n"
            "from typing import ClassVar\n"
            "@dataclass\n"
            "class Spec:\n"
            "    SCHEMA: ClassVar[int] = 1\n"
            "    a: int\n"
            "    def spec_hash(self):\n"
            "        payload = {'a': self.a}\n"
            "        return hashlib.blake2b(repr(payload).encode()).hexdigest()\n"
        )
        assert lint_text(snippet).ok

    def test_real_runspec_passes(self):
        report = lint_paths([REPO / "src/repro/orchestrator/spec.py"])
        assert report.ok, report.format_text()


# ---------------------------------------------------------------------------
# concurrency checker (RPR3xx)
# ---------------------------------------------------------------------------


class TestConcurrencyChecker:
    def test_fixture_positives(self):
        report = lint_paths([FIXTURES / "concurrency_bad.py"])
        counts = report.counts
        assert counts["RPR301"] == 4
        assert counts["RPR302"] == 1

    def test_fixture_negatives(self):
        report = lint_paths([FIXTURES / "concurrency_ok.py"])
        assert report.ok, report.format_text()

    def test_init_exempt_but_run_is_not(self):
        snippet = (
            "import threading\n"
            "class W:\n"
            "    def __init__(self):\n"
            "        self.x = 0\n"
            "    def go(self):\n"
            "        threading.Thread(target=self.run).start()\n"
            "    def run(self):\n"
            "        self.x = 1\n"
        )
        report = lint_text(snippet)
        assert codes_of(report) == ["RPR301"]
        assert report.diagnostics[0].line == 8

    def test_unthreaded_class_never_rpr301(self):
        snippet = "class C:\n    def bump(self):\n        self.n = 1\n"
        assert lint_text(snippet).ok

    def test_real_simcomm_passes(self):
        report = lint_paths([REPO / "src/repro/cluster/simcomm.py"])
        assert report.ok, report.format_text()


# ---------------------------------------------------------------------------
# facade checker (RPR4xx)
# ---------------------------------------------------------------------------


class TestFacadeChecker:
    def test_fixture_positives(self):
        report = lint_paths([FIXTURES / "facadepkg" / "__init__.py"])
        counts = report.counts
        assert counts["RPR401"] == 1  # never_imported
        assert counts["RPR402"] == 1  # vanished
        assert counts["RPR403"] == 1  # old_entry_point
        assert counts["RPR404"] == 1  # older_entry_point

    def test_fixture_negatives(self):
        report = lint_paths([FIXTURES / "facadepkg_ok" / "__init__.py"])
        assert report.ok, report.format_text()

    def test_all_entry_bound_by_def_or_import(self):
        snippet = "def f():\n    pass\n__all__ = ['f', 'g']\n"
        report = lint_text(snippet)
        assert codes_of(report) == ["RPR401"]
        assert "'g'" in report.diagnostics[0].message

    def test_deprecated_with_proper_warn_is_clean(self):
        snippet = (
            "import warnings\n"
            "def old():\n"
            "    \"\"\"Deprecated: use new().\"\"\"\n"
            "    warnings.warn('old', DeprecationWarning, stacklevel=2)\n"
        )
        assert lint_text(snippet).ok

    def test_real_facades_pass(self):
        report = lint_paths(
            [REPO / "src/repro/__init__.py", REPO / "src/repro/api.py"]
        )
        assert report.ok, report.format_text()


# ---------------------------------------------------------------------------
# end-to-end: the gate itself
# ---------------------------------------------------------------------------


class TestLintGate:
    def test_src_tree_is_clean(self):
        report = lint_paths([REPO / "src"])
        assert report.ok, report.format_text()
        assert report.files_checked > 50

    def test_seeded_violation_file_fails(self):
        report = lint_paths([FIXTURES / "seeded_violation.py"])
        assert not report.ok
        families = {c[:4] for c in report.counts}
        assert {"RPR1", "RPR2", "RPR3", "RPR4"} <= families

    def test_suppressed_fixture_is_clean_with_two_suppressions(self):
        report = lint_paths([FIXTURES / "suppressed_ok.py"])
        assert report.ok
        assert report.suppressed == 2

    def test_cli_exit_codes_and_json_artifact(self, tmp_path):
        out = tmp_path / "report.json"
        env_src = str(REPO / "src")
        ok = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint",
             str(FIXTURES / "suppressed_ok.py"), "--json", str(out)],
            capture_output=True, text=True, cwd=REPO,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
        )
        assert ok.returncode == 0, ok.stdout + ok.stderr
        payload = json.loads(out.read_text())
        assert payload["tool"] == "repro-lint" and payload["suppressed"] == 2

        bad = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint",
             str(FIXTURES / "seeded_violation.py")],
            capture_output=True, text=True, cwd=REPO,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
        )
        assert bad.returncode == 1
        assert "RPR101" in bad.stdout

    def test_cli_rejects_unknown_select_code(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "--select", "RPR999",
             str(FIXTURES / "suppressed_ok.py")],
            capture_output=True, text=True, cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode != 0
        assert "RPR999" in result.stderr
